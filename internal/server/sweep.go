package server

// The hidden-event-space sweep API: POST /v1/sweep submits a jobs.SweepSpec
// scan of a raw event×umask×cmask grid (see internal/sweep for the
// decoding model). Scans are behaviour-class batched: the planner
// collapses aliased cells before any solving, one engine evaluation runs
// per class, and GET /stats shows the evaluations-avoided ratio under
// "sweep". Sweeps run on the server's SHARED engine so cross-scan verdict
// dedup also lands in the service caches. The job machinery (events,
// resume, delete) is shared with exploration via /v1/jobs.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/jobs"
	"repro/internal/sweep"
)

// DefaultMaxSweepCells bounds a submitted grid's cell count unless
// Options.MaxSweepCells says otherwise: large enough for a 100×-catalogue
// scan, small enough that one request cannot queue an unbounded amount of
// simulation + solving.
const DefaultMaxSweepCells = 8192

// sweepRequestJSON is the POST /v1/sweep body. Axis values are plain JSON
// numbers in [0, 255]; omitting all three axes selects sweep.DefaultGrid.
type sweepRequestJSON struct {
	// Grid selects a preset: "" or "default" for sweep.DefaultGrid (384
	// cells), "large" for sweep.LargeGrid (4096 cells, the 100×-catalogue
	// scan). Mutually exclusive with explicit axes.
	Grid   string `json:"grid,omitempty"`
	Events []int  `json:"events,omitempty"`
	Umasks []int  `json:"umasks,omitempty"`
	Cmasks []int  `json:"cmasks,omitempty"`
	// Seed drives the decoder and the simulated base corpus; the whole
	// sweep is a pure function of (grid, seed, samples, uops_per_sample).
	Seed int64 `json:"seed,omitempty"`
	// Samples and UopsPerSample size the simulated base corpus (defaults
	// from sweep.DefaultBaseSpec).
	Samples       int `json:"samples,omitempty"`
	UopsPerSample int `json:"uops_per_sample,omitempty"`
	// Workers bounds concurrent behaviour-class evaluations (0 = engine
	// worker count, 1 = sequential reference pipeline). Results are
	// bit-identical across settings.
	Workers int `json:"workers,omitempty"`
}

type sweepSubmitJSON struct {
	jobs.Status
	// GridSize echoes the expanded cell count the job will scan.
	GridSize int `json:"grid_size"`
}

// sweepAxis converts one JSON axis, range-checking every value.
func sweepAxis(name string, vals []int) ([]uint8, error) {
	out := make([]uint8, 0, len(vals))
	for _, v := range vals {
		if v < 0 || v > 255 {
			return nil, fmt.Errorf("%s value %d out of range [0, 255]", name, v)
		}
		out = append(out, uint8(v))
	}
	return out, nil
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.durableOK(w) {
		return
	}
	var req sweepRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	cfg, err := s.requestConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Samples < 0 || req.UopsPerSample < 0 {
		writeError(w, http.StatusBadRequest, "samples and uops_per_sample must be non-negative")
		return
	}
	if req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "workers must be non-negative")
		return
	}

	var grid sweep.Grid
	switch req.Grid {
	case "", "default":
		grid = sweep.DefaultGrid()
	case "large":
		grid = sweep.LargeGrid()
	default:
		writeError(w, http.StatusBadRequest, "unknown grid preset %q (want \"default\" or \"large\")", req.Grid)
		return
	}
	if len(req.Events) != 0 || len(req.Umasks) != 0 || len(req.Cmasks) != 0 {
		if req.Grid != "" {
			writeError(w, http.StatusBadRequest, "grid preset and explicit axes are mutually exclusive")
			return
		}
		if len(req.Events) == 0 || len(req.Umasks) == 0 || len(req.Cmasks) == 0 {
			writeError(w, http.StatusBadRequest,
				"a custom grid needs all three axes (events, umasks, cmasks); omit all three for the default grid")
			return
		}
		var err error
		if grid.Events, err = sweepAxis("events", req.Events); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if grid.Umasks, err = sweepAxis("umasks", req.Umasks); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if grid.Cmasks, err = sweepAxis("cmasks", req.Cmasks); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if grid.Size() > s.maxSweepCells {
		writeError(w, http.StatusBadRequest,
			"grid has %d cells, cap is %d (server -max-sweep-cells)", grid.Size(), s.maxSweepCells)
		return
	}

	j, err := s.jobs.SubmitSweep(jobs.SweepSpec{
		Grid:          grid,
		Seed:          req.Seed,
		Samples:       req.Samples,
		UopsPerSample: req.UopsPerSample,
		Confidence:    cfg.Confidence,
		Mode:          cfg.Mode,
		ForceExact:    cfg.ForceExact,
		Workers:       req.Workers,
		// The shared engine, not a per-job one: class evaluations ride the
		// service worker pool, and cross-scan verdict dedup lands in the
		// content-addressed caches /stats exposes.
		Engine: s.eng,
	})
	if err != nil {
		if errors.Is(err, jobs.ErrJournal) {
			s.writeJournalError(w, err)
			return
		}
		status := http.StatusBadRequest
		if errors.Is(err, jobs.ErrClosed) || errors.Is(err, jobs.ErrQueueFull) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, sweepSubmitJSON{Status: j.Status(), GridSize: grid.Size()})
}
