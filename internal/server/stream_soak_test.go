package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestStreamBackpressureSoak is the backpressure soak (a named CI step):
// a synthetic producer offers 10k+ observations/sec at a drop-policy
// stream with a small bounded queue, while a live event watcher records
// every verdict. The invariants under sustained overload:
//
//   - bounded memory: the queue's high-water mark never exceeds the
//     configured buffer (memory per stream is buffer-bounded by
//     construction; the telemetry must agree);
//   - no reordering: verdict indexes arrive strictly increasing and the
//     embedded stream state is monotone;
//   - explicit backpressure: the drop policy fires and every drop is
//     accounted — queued + dropped equals offered, in the ingest
//     summaries, the stream describe and /stats alike — and a
//     reject-policy stream 429s, also counted in /stats.
//
// Offered throughput is logged, not gated: CI boxes vary, invariants
// must not.
func TestStreamBackpressureSoak(t *testing.T) {
	const (
		buffer  = 64
		offered = 12000
		batch   = 500
	)
	ts, srv := newStreamServer(t, func(o *Options) { o.StreamBuffer = 256 })
	st := createStream(t, ts.URL, map[string]any{"model": "pde", "policy": "drop", "buffer": buffer})

	// Watcher: follows the event stream live, recording verdict order.
	type seen struct {
		indexes []int
		totals  []int
	}
	var watch seen
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/streams/" + st.ID + "/events")
		if err != nil {
			t.Errorf("watch: %v", err)
			return
		}
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		for {
			var ev streamEvent
			if err := dec.Decode(&ev); err != nil {
				return
			}
			if ev.Kind == "verdict" {
				var v verdictEventJSON
				b, _ := json.Marshal(ev.Data)
				if err := json.Unmarshal(b, &v); err != nil {
					t.Errorf("verdict event: %v", err)
					return
				}
				watch.indexes = append(watch.indexes, v.Index)
				watch.totals = append(watch.totals, v.State.Total)
			}
			if ev.Kind == "closed" {
				return
			}
		}
	}()

	// Producer: NDJSON batches as fast as the server accepts them. Small
	// observations keep the decode cost low so the offered rate is
	// producer-bound, not marshal-bound.
	lines := make([]string, batch)
	var sent, queued, dropped int
	start := time.Now()
	for sent < offered {
		for i := range lines {
			lines[i] = ndjsonObs(fmt.Sprintf("s%06d", sent+i), 500, 100, 4, int64(sent+i))
		}
		status, sum := ingestLines(t, ts.URL, st.ID, lines...)
		if status != http.StatusOK {
			t.Fatalf("ingest status %d", status)
		}
		if sum.Queued+sum.Dropped != batch || sum.ErrorLines != 0 {
			t.Fatalf("lossy accounting: %+v (batch %d)", sum, batch)
		}
		sent += batch
		queued += sum.Queued
		dropped += sum.Dropped
	}
	elapsed := time.Since(start)
	rate := float64(sent) / elapsed.Seconds()
	t.Logf("offered %d observations in %v (%.0f obs/sec): queued %d, dropped %d",
		sent, elapsed.Round(time.Millisecond), rate, queued, dropped)

	// Sustained overload must actually have engaged the drop policy —
	// otherwise the soak proved nothing.
	if dropped == 0 {
		t.Fatalf("offered %d at %.0f obs/sec into a %d-slot queue without a single drop", sent, rate, buffer)
	}

	// Close; the worker drains the tail and the watcher sees "closed".
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wg.Wait()

	got := describeStream(t, ts.URL, st.ID)
	if got.HighWater > buffer {
		t.Fatalf("memory bound violated: high-water %d > buffer %d", got.HighWater, buffer)
	}
	if got.Ingested != uint64(queued) || got.Dropped != uint64(dropped) {
		t.Fatalf("describe accounting %+v != producer (queued %d dropped %d)", got, queued, dropped)
	}
	if got.State.Total != queued {
		t.Fatalf("verdicts %d != queued %d: close lost samples", got.State.Total, queued)
	}

	// No reordering: verdict indexes strictly increase and the stream
	// state is monotone (gaps are fine — the event ring is bounded).
	for i := 1; i < len(watch.indexes); i++ {
		if watch.indexes[i] <= watch.indexes[i-1] || watch.totals[i] <= watch.totals[i-1] {
			t.Fatalf("reordered verdicts at %d: indexes %d..%d totals %d..%d",
				i, watch.indexes[i-1], watch.indexes[i], watch.totals[i-1], watch.totals[i])
		}
	}
	if len(watch.indexes) == 0 {
		t.Fatal("watcher saw no verdicts")
	}

	// /stats carries the same totals, plus the 429 path: a reject-policy
	// stream overloaded the same way counts its refusals.
	rj := createStream(t, ts.URL, map[string]any{"model": "pde", "policy": "reject", "buffer": 4})
	blast := make([]string, 256)
	for i := range blast {
		blast[i] = ndjsonObs(fmt.Sprintf("r%d", i), 500, 100, 60, int64(i))
	}
	status, sum := ingestLines(t, ts.URL, rj.ID, blast...)
	if status != http.StatusTooManyRequests || sum.Rejected == 0 {
		t.Fatalf("reject soak: status %d %+v", status, sum)
	}
	stats := srv.streams.stats()
	if stats.Dropped != uint64(dropped) || stats.Rejected == 0 {
		t.Fatalf("/stats %+v: dropped want %d, rejected want > 0", stats, dropped)
	}
	if stats.QueueHighWater > 256 {
		t.Fatalf("/stats high-water %d exceeds server buffer", stats.QueueHighWater)
	}
	if stats.Latency.Count == 0 || stats.Latency.P50Micro > stats.Latency.MaxMicro {
		t.Fatalf("/stats latency %+v", stats.Latency)
	}
}
