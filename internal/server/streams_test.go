package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// newStreamServer is newTestServer returning the Server too, for tests
// that reach into the stream manager (manual reaps, direct Close).
func newStreamServer(t *testing.T, opts ...func(*Options)) (*httptest.Server, *Server) {
	t.Helper()
	eng := engine.New(engine.WithWorkers(2))
	t.Cleanup(eng.Close)
	o := Options{
		Engine:   eng,
		Defaults: engine.Config{IdentifyViolations: true},
		Catalog:  []Model{{Name: "pde", Source: pdeModelSrc}},
	}
	for _, f := range opts {
		f(&o)
	}
	srv := New(o)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// createStream opens a stream and decodes its describe body.
func createStream(t *testing.T, base string, body map[string]any) streamJSON {
	t.Helper()
	resp := postJSON(t, base+"/v1/streams", body)
	if resp.StatusCode != http.StatusCreated {
		b := new(strings.Builder)
		json.NewEncoder(b).Encode(body)
		t.Fatalf("create stream %s: status %d", strings.TrimSpace(b.String()), resp.StatusCode)
	}
	var st streamJSON
	decodeBody(t, resp, &st)
	return st
}

// ndjsonObs renders one observation line: cw >= pm is consistent with
// the pde model, cw < pm refutes it.
func ndjsonObs(label string, cw, pm float64, samples int, seed int64) string {
	b, err := json.Marshal(obsAround(label, cw, pm, samples, seed))
	if err != nil {
		panic(err)
	}
	return string(b)
}

// ingestLines POSTs NDJSON lines to a stream and decodes the summary.
func ingestLines(t *testing.T, base, id string, lines ...string) (int, ingestSummaryJSON) {
	t.Helper()
	body := strings.Join(lines, "\n")
	resp, err := http.Post(base+"/v1/streams/"+id+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	status := resp.StatusCode
	var sum ingestSummaryJSON
	decodeBody(t, resp, &sum)
	return status, sum
}

// describeStream fetches a stream's describe body.
func describeStream(t *testing.T, base, id string) streamJSON {
	t.Helper()
	resp, err := http.Get(base + "/v1/streams/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("describe %s: status %d", id, resp.StatusCode)
	}
	var st streamJSON
	decodeBody(t, resp, &st)
	return st
}

// waitTotal polls describe until the stream has evaluated n observations.
func waitTotal(t *testing.T, base, id string, n int) streamJSON {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := describeStream(t, base, id)
		if st.State.Total >= n {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream %s stuck at %d/%d verdicts", id, st.State.Total, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readEvents consumes the NDJSON event stream until terminal or n events.
func readEvents(t *testing.T, base, id string, from, n int) []streamEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/streams/%s/events?from=%d", base, id, from), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
		if ev.Kind == "closed" || (n > 0 && len(out) >= n) {
			break
		}
	}
	return out
}

// TestStreamLifecycle drives the happy path end to end: create, ingest a
// refuting corpus, watch the monotone state, replay events, close, and
// check the terminal event and final telemetry.
func TestStreamLifecycle(t *testing.T) {
	ts, _ := newStreamServer(t)
	st := createStream(t, ts.URL, map[string]any{"model": "pde"})
	if st.ID == "" || st.Policy != PolicyBlock || st.State.FirstRefuted != -1 {
		t.Fatalf("created stream %+v", st)
	}

	status, sum := ingestLines(t, ts.URL, st.ID,
		ndjsonObs("ok1", 500, 100, 40, 1),
		"", // blank lines are ignored
		ndjsonObs("ok2", 450, 120, 40, 2),
		ndjsonObs("bad", 100, 400, 40, 3),
	)
	if status != http.StatusOK || sum.Received != 3 || sum.Queued != 3 || sum.ErrorLines != 0 {
		t.Fatalf("ingest status %d summary %+v", status, sum)
	}

	got := waitTotal(t, ts.URL, st.ID, 3)
	if !got.State.Refuted || got.State.Infeasible != 1 || got.State.FirstRefuted != 2 {
		t.Fatalf("state %+v", got.State)
	}
	if got.State.Confidence == 0 || got.ViolatedConstraints["load.pde$_miss <= load.causes_walk"] != 1 {
		t.Fatalf("state %+v violations %v", got.State, got.ViolatedConstraints)
	}
	if got.Ingested != 3 || got.Latency.Count != 3 || got.Latency.MaxMicro <= 0 {
		t.Fatalf("telemetry %+v", got)
	}

	// Replay: created + 3 verdicts, in ingest order, state monotone.
	evs := readEvents(t, ts.URL, st.ID, 0, 4)
	if len(evs) != 4 || evs[0].Kind != "created" {
		t.Fatalf("events %+v", evs)
	}
	for i, ev := range evs[1:] {
		if ev.Kind != "verdict" {
			t.Fatalf("event %d: %+v", i+1, ev)
		}
		var v verdictEventJSON
		b, _ := json.Marshal(ev.Data)
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if v.Index != i || v.State.Total != i+1 {
			t.Fatalf("verdict event %d out of order: %+v", i, v)
		}
	}

	// Close: terminal event lands, second DELETE removes, describe 404s.
	resp, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(resp)
	if err != nil {
		t.Fatal(err)
	}
	var del streamDeleteJSON
	decodeBody(t, r, &del)
	if !del.Closed {
		t.Fatalf("delete %+v", del)
	}
	evs = readEvents(t, ts.URL, st.ID, 4, 0)
	if len(evs) != 1 || evs[0].Kind != "closed" {
		t.Fatalf("terminal events %+v", evs)
	}
	r, err = http.DefaultClient.Do(resp.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	del = streamDeleteJSON{}
	decodeBody(t, r, &del)
	if !del.Removed {
		t.Fatalf("second delete %+v", del)
	}
	r, err = http.Get(ts.URL + "/v1/streams/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, r, http.StatusNotFound, "unknown stream")
}

// TestStreamCreateValidation covers the create-side error surface.
func TestStreamCreateValidation(t *testing.T) {
	ts, _ := newStreamServer(t)
	resp := postJSON(t, ts.URL+"/v1/streams", map[string]any{"model": "nope"})
	wantError(t, resp, http.StatusNotFound, "nope")
	resp = postJSON(t, ts.URL+"/v1/streams", map[string]any{"model": "pde", "policy": "spill"})
	wantError(t, resp, http.StatusBadRequest, "policy")
	resp = postJSON(t, ts.URL+"/v1/streams", map[string]any{"model": "pde", "buffer": -1})
	wantError(t, resp, http.StatusBadRequest, "buffer")
	resp = postJSON(t, ts.URL+"/v1/streams?confidence=nan", map[string]any{"model": "pde"})
	wantError(t, resp, http.StatusBadRequest, "confidence")
}

// TestStreamMaxStreams pins the stream cap: creation beyond -max-streams
// is a 429 counted in /stats, and closing a stream frees its slot.
func TestStreamMaxStreams(t *testing.T) {
	ts, srv := newStreamServer(t, func(o *Options) { o.MaxStreams = 1 })
	st := createStream(t, ts.URL, map[string]any{"model": "pde"})
	resp := postJSON(t, ts.URL+"/v1/streams", map[string]any{"model": "pde"})
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	wantError(t, resp, http.StatusTooManyRequests, "stream cap")
	if got := srv.streams.stats().Rejected; got != 1 {
		t.Fatalf("rejected counter %d", got)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+st.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	createStream(t, ts.URL, map[string]any{"model": "pde"})
}

// TestStreamIngestErrors covers the per-line error contract: malformed
// lines are reported per line (summary + event) while well-formed lines
// on the same request still queue — nothing is silently skipped.
func TestStreamIngestErrors(t *testing.T) {
	ts, _ := newStreamServer(t)
	st := createStream(t, ts.URL, map[string]any{"model": "pde"})

	status, sum := ingestLines(t, ts.URL, st.ID,
		`{"label":"torn","events":["load.causes_walk"`, // torn JSON
		ndjsonObs("ok", 500, 100, 10, 1),
		`{"label":"alien","events":["cpu.cycles"],"samples":[[1],[2]]}`, // unknown counters
		`{"label":"empty","events":["load.causes_walk","load.pde$_miss"],"samples":[]}`,
		`{"label":"nan","events":["load.causes_walk","load.pde$_miss"],"samples":[[NaN,1]]}`,
	)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if sum.Received != 5 || sum.Queued != 1 || sum.ErrorLines != 4 || len(sum.Errors) != 4 {
		t.Fatalf("summary %+v", sum)
	}
	for _, e := range sum.Errors {
		if e.Line == 0 || e.Error == "" {
			t.Fatalf("error entry %+v", e)
		}
	}
	// Every malformed line is also an error event on the stream.
	waitTotal(t, ts.URL, st.ID, 1)
	evs := readEvents(t, ts.URL, st.ID, 0, 6)
	errEvents := 0
	for _, ev := range evs {
		if ev.Kind == "error" {
			errEvents++
		}
	}
	if errEvents != 4 {
		t.Fatalf("error events %d, want 4 (%+v)", errEvents, evs)
	}

	// Unknown stream and closed stream are request-level errors.
	resp, err := http.Post(ts.URL+"/v1/streams/s999999/ingest", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusNotFound, "unknown stream")
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+st.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/streams/"+st.ID+"/ingest", "application/x-ndjson",
		strings.NewReader(ndjsonObs("late", 500, 100, 10, 9)))
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusConflict, "closed")
}

// TestStreamOversizedLine pins the ErrTooLong contract: a line past the
// cap is a per-line error that aborts the request (the line boundary is
// lost), and the error is visible in both summary and events.
func TestStreamOversizedLine(t *testing.T) {
	ts, srv := newStreamServer(t)
	srv.streams.maxLine = 1024
	st := createStream(t, ts.URL, map[string]any{"model": "pde"})
	big := ndjsonObs("big", 500, 100, 200, 1) // ~200 samples ≫ 1 KiB
	if len(big) <= 1024 {
		t.Fatalf("oversized line is only %d bytes", len(big))
	}
	status, sum := ingestLines(t, ts.URL, st.ID, ndjsonObs("ok", 500, 100, 10, 2), big)
	if status != http.StatusOK || sum.Queued != 1 || sum.ErrorLines != 1 {
		t.Fatalf("status %d summary %+v", status, sum)
	}
	if !strings.Contains(sum.Errors[0].Error, "exceeds") {
		t.Fatalf("error %+v", sum.Errors[0])
	}
}

// TestStreamDropPolicy exercises the slow-reader drop policy: with a
// tiny queue and an offered burst far beyond the solve rate, the
// overflow is dropped, counted (summary, describe, /stats) and surfaced
// as a coalesced dropped event — and the queue never grows past the
// high-water mark.
func TestStreamDropPolicy(t *testing.T) {
	ts, srv := newStreamServer(t)
	st := createStream(t, ts.URL, map[string]any{"model": "pde", "policy": "drop", "buffer": 2})
	if st.Buffer != 2 {
		t.Fatalf("buffer %d", st.Buffer)
	}
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = ndjsonObs(fmt.Sprintf("o%d", i), 500, 100, 60, int64(i))
	}
	status, sum := ingestLines(t, ts.URL, st.ID, lines...)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if sum.Queued+sum.Dropped != 64 || sum.Dropped == 0 {
		t.Fatalf("summary %+v: a 64-burst into a 2-slot queue must drop", sum)
	}
	got := waitTotal(t, ts.URL, st.ID, sum.Queued)
	if got.HighWater > 2 {
		t.Fatalf("high-water %d exceeded buffer 2", got.HighWater)
	}
	if got.Dropped != uint64(sum.Dropped) {
		t.Fatalf("describe dropped %d != summary %d", got.Dropped, sum.Dropped)
	}
	if stats := srv.streams.stats(); stats.Dropped != uint64(sum.Dropped) {
		t.Fatalf("/stats dropped %d != %d", stats.Dropped, sum.Dropped)
	}
	evs := readEvents(t, ts.URL, st.ID, 0, 1+sum.Queued+1)
	found := false
	for _, ev := range evs {
		if ev.Kind == "dropped" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no coalesced dropped event in %+v", evs)
	}
}

// TestStreamRejectPolicy exercises the fail-fast policy: the first
// full-queue line 429s the request, reporting how far it got.
func TestStreamRejectPolicy(t *testing.T) {
	ts, srv := newStreamServer(t)
	st := createStream(t, ts.URL, map[string]any{"model": "pde", "policy": "reject", "buffer": 2})
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = ndjsonObs(fmt.Sprintf("o%d", i), 500, 100, 60, int64(i))
	}
	status, sum := ingestLines(t, ts.URL, st.ID, lines...)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (summary %+v)", status, sum)
	}
	if sum.Rejected != 1 || sum.Queued == 0 || sum.Queued+sum.Rejected > 64 {
		t.Fatalf("summary %+v", sum)
	}
	if stats := srv.streams.stats(); stats.Rejected == 0 {
		t.Fatal("reject not counted in /stats")
	}
}

// TestStreamConfigOverride pins query-parameter config plumbing: a
// stream created at confidence 0.5 reports exactly 0.5 after one
// refuting observation (1-(1-c)^1 = c).
func TestStreamConfigOverride(t *testing.T) {
	ts, _ := newStreamServer(t)
	resp := postJSON(t, ts.URL+"/v1/streams?confidence=0.5", map[string]any{"model": "pde"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	var st streamJSON
	decodeBody(t, resp, &st)
	if _, sum := ingestLines(t, ts.URL, st.ID, ndjsonObs("bad", 100, 400, 40, 1)); sum.Queued != 1 {
		t.Fatalf("summary %+v", sum)
	}
	got := waitTotal(t, ts.URL, st.ID, 1)
	if !got.State.Refuted || got.State.Confidence != 0.5 {
		t.Fatalf("state %+v, want confidence exactly 0.5", got.State)
	}
}

// TestStreamStatsAndHealthz checks the stream tier shows up in the
// service's observability endpoints.
func TestStreamStatsAndHealthz(t *testing.T) {
	ts, _ := newStreamServer(t)
	createStream(t, ts.URL, map[string]any{"model": "pde"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthJSON
	decodeBody(t, resp, &h)
	if h.Streams != 1 {
		t.Fatalf("healthz streams %d", h.Streams)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsJSON
	decodeBody(t, resp, &st)
	if st.Streams.Active != 1 || st.Streams.Created != 1 {
		t.Fatalf("stats streams %+v", st.Streams)
	}
	// The listing carries the same stream.
	resp, err = http.Get(ts.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var list streamListJSON
	decodeBody(t, resp, &list)
	if len(list.Streams) != 1 {
		t.Fatalf("listing %+v", list)
	}
}
