package server

// The jobs API: the network surface of internal/jobs, serving the paper's
// §5 / Appendix C guided search (Figures 7, 8 and 10) — and, via sweep.go,
// the hidden-event-space scans — as asynchronous, resumable HTTP jobs.
//
//	POST   /v1/explore            submit an exploration job
//	POST   /v1/sweep              submit a sweep job (sweep.go)
//	GET    /v1/jobs               list jobs (live and retained)
//	GET    /v1/jobs/{id}          one job's status and result
//	GET    /v1/jobs/{id}/events   NDJSON progress stream (replay + live)
//	POST   /v1/jobs/{id}/resume   continue a terminal job from its checkpoint
//	DELETE /v1/jobs/{id}          cancel a running job / drop a finished one
//
// A submission names its feature space either inline — a feature-
// conditional DSL template (explore.TemplateBuilder's #if/#endif markers)
// plus an uploaded corpus — or by catalogue reference ("haswell-mmu", the
// Table 3 space over the simulated Haswell MMU, with an uploaded or
// simulated corpus). Exploration runs on a private per-job engine, so a
// job's corpus-keyed caches die with it; evaluation defaults come from the
// server Config and the same query parameters the evaluate endpoints take.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/counters"
	"repro/internal/explore"
	"repro/internal/jobs"
)

// exploreRequestJSON is the POST /v1/explore body.
type exploreRequestJSON struct {
	// Source is a feature-conditional DSL template (#if f / #endif guard
	// lines); Catalog names a built-in feature space instead. Exactly one
	// must be set.
	Source  string `json:"source,omitempty"`
	Catalog string `json:"catalog,omitempty"`
	// Candidates restricts the searched feature universe (default: every
	// feature the template or catalogue defines). Initial seeds the
	// starting model.
	Candidates []string `json:"candidates,omitempty"`
	Initial    []string `json:"initial,omitempty"`
	// Observations is the inline corpus. Required with Source; optional
	// with Catalog, which can simulate its own ("quick" spec).
	Observations []*counters.Observation `json:"observations,omitempty"`
	// Eliminate runs the elimination phase after discovery (default true).
	Eliminate *bool `json:"eliminate,omitempty"`
	// MaxSteps bounds discovery; Workers bounds frontier parallelism
	// (0 = engine workers, 1 = the sequential reference search).
	MaxSteps int `json:"max_steps,omitempty"`
	Workers  int `json:"workers,omitempty"`
}

// CatalogHaswellMMU is the catalogue exploration space: the Table 3
// feature axes over the simulated Haswell MMU (haswell.SearchUniverse).
const CatalogHaswellMMU = jobs.CatalogHaswellMMU

type submitJSON struct {
	jobs.Status
	// Candidates echoes the resolved feature universe the job searches.
	Candidates []string `json:"candidates"`
}

func (s *Server) handleExploreSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.durableOK(w) {
		return
	}
	var req exploreRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	cfg, err := s.requestConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The wire form is both what Build resolves into a runnable spec and
	// what the durable journal records — a crashed daemon rebuilds this
	// exact search from it.
	wire := jobs.ExploreWire{
		Source:             req.Source,
		Catalog:            req.Catalog,
		Candidates:         req.Candidates,
		Initial:            req.Initial,
		Observations:       req.Observations,
		Confidence:         cfg.Confidence,
		Mode:               cfg.Mode,
		IdentifyViolations: cfg.IdentifyViolations,
		ForceExact:         cfg.ForceExact,
		MaxDiscoverySteps:  req.MaxSteps,
		Workers:            req.Workers,
		SkipElimination:    req.Eliminate != nil && !*req.Eliminate,
	}
	spec, universe, err := wire.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	known := map[string]bool{}
	for _, f := range universe {
		known[f] = true
	}
	for _, f := range append(append([]string{}, req.Candidates...), req.Initial...) {
		if !known[f] {
			writeError(w, http.StatusBadRequest, "unknown feature %q (template/catalogue defines %v)", f, universe)
			return
		}
	}

	// Validate the corpus against the searched space's maximal model —
	// initial ∪ candidates, not the whole template universe: feature
	// guards only ever add counters, so an observation covering that
	// model covers every combination this search can build, while
	// counters used only by unsearched features stay irrelevant. This
	// also compiles the template once, making bad DSL (in any reachable
	// line) a 400 here instead of a failed job later.
	searched := append(append([]string{}, spec.Candidates...), spec.Initial...)
	full, err := spec.Builder(explore.NewFeatureSet(searched...))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	for _, o := range spec.Corpus {
		if o == nil {
			writeError(w, http.StatusBadRequest, "corpus contains a null observation")
			return
		}
		if o.Len() == 0 {
			writeError(w, http.StatusBadRequest, "observation %q has no samples", o.Label)
			return
		}
		if missing := missingCounters(full, o); len(missing) > 0 {
			writeError(w, http.StatusBadRequest,
				"observation %q does not record model counters %v", o.Label, missing)
			return
		}
	}

	j, err := s.jobs.SubmitExplore(spec)
	if err != nil {
		if errors.Is(err, jobs.ErrJournal) {
			s.writeJournalError(w, err)
			return
		}
		status := http.StatusBadRequest
		if errors.Is(err, jobs.ErrClosed) || errors.Is(err, jobs.ErrQueueFull) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitJSON{Status: j.Status(), Candidates: spec.Candidates})
}

type jobListJSON struct {
	Jobs []jobs.Status `json:"jobs"`
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	statuses := s.jobs.List()
	// Listings stay light: results are served by GET /v1/jobs/{id}.
	for i := range statuses {
		statuses[i].Result = nil
	}
	if statuses == nil {
		statuses = []jobs.Status{}
	}
	writeJSON(w, http.StatusOK, jobListJSON{Jobs: statuses})
}

// lookupJob resolves the {id} path value, writing the 404 when it cannot.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleJobEvents streams a job's event log as NDJSON: the full history
// (or from ?from=seq onward), then live events, closing after the terminal
// event. The subscription runs under the request context, so a client
// disconnect unsubscribes — it never cancels the job itself, which other
// watchers may still be following.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "from must be a non-negative integer, got %q", v)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()
	enc := json.NewEncoder(w)
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	for ev := range j.Events(ctx, from) {
		if err := enc.Encode(ev); err != nil {
			// The write failed (client gone): cancel the subscription and
			// drain so its goroutine exits before the handler does.
			cancel()
			break
		}
		rc.Flush()
	}
}

func (s *Server) handleJobResume(w http.ResponseWriter, r *http.Request) {
	if !s.durableOK(w) {
		return
	}
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	// Resume dispatches on the job's kind (explore, sweep), so one
	// endpoint serves every resumable job family.
	nj, err := s.jobs.Resume(j.ID)
	if err != nil {
		if errors.Is(err, jobs.ErrJournal) {
			s.writeJournalError(w, err)
			return
		}
		status := http.StatusConflict
		if errors.Is(err, jobs.ErrUnknownJob) {
			status = http.StatusNotFound
		} else if errors.Is(err, jobs.ErrClosed) || errors.Is(err, jobs.ErrQueueFull) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, nj.Status())
}

// handleJobDelete cancels an active job (202, poll for "cancelled") or
// removes a terminal one from the retained ring (200).
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if j.State().Terminal() {
		if err := s.jobs.Remove(j.ID); err != nil {
			// Retention may have evicted the job between lookup and Remove:
			// that is the 404 it would be one request later, not a conflict.
			status := http.StatusConflict
			if errors.Is(err, jobs.ErrUnknownJob) {
				status = http.StatusNotFound
			}
			writeError(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "removed": true})
		return
	}
	if err := s.jobs.Cancel(j.ID); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}
