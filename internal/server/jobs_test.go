package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/jobs"
)

// exploreTemplate is the Figure 6 feature space as the HTTP API takes it:
// plain DSL with #if feature guards.
const exploreTemplate = `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
#if abort
        switch Abort { Yes => done; No => pass; };
#endif
    };
};
incr load.causes_walk;
#if doublewalk
switch Double { Yes => incr load.causes_walk; No => pass; };
#endif
done;
`

// newJobsServer is newTestServer plus an explicitly-owned jobs manager, so
// tests control its shutdown.
func newJobsServer(t *testing.T, jopts jobs.Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	jm := jobs.NewManager(jopts)
	t.Cleanup(jm.Close)
	ts := newTestServer(t, func(o *Options) { o.Jobs = jm })
	return ts, jm
}

// exploreBody is the canonical submission: the template space over a
// two-observation corpus whose anomaly only the abort feature explains.
func exploreBody(extra map[string]any) map[string]any {
	body := map[string]any{
		"source": exploreTemplate,
		"observations": []*counters.Observation{
			obsAround("benign", 500, 300, 200, 1),
			obsAround("anomalous", 200, 500, 200, 2),
		},
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

// awaitJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func awaitJob(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		decodeBody(t, resp, &st)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExploreJobEndToEnd(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})

	resp := postJSON(t, ts.URL+"/v1/explore", exploreBody(nil))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub struct {
		jobs.Status
		Candidates []string `json:"candidates"`
	}
	decodeBody(t, resp, &sub)
	if sub.ID == "" || fmt.Sprint(sub.Candidates) != "[abort doublewalk]" {
		t.Fatalf("submission: %+v", sub)
	}

	st := awaitJob(t, ts.URL, sub.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("job finished %s (%s)", st.State, st.Error)
	}
	// Result travels as JSON; re-marshal to inspect it structurally.
	raw, _ := json.Marshal(st.Result)
	var res struct {
		Final struct {
			Key      string `json:"key"`
			Feasible bool   `json:"feasible"`
		} `json:"final"`
		Converged bool     `json:"converged"`
		Required  []string `json:"required"`
		Optional  []string `json:"optional"`
		Graph     string   `json:"graph"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Final.Key != "abort" || !res.Final.Feasible {
		t.Fatalf("result: %+v", res)
	}
	if fmt.Sprint(res.Required) != "[abort]" {
		t.Fatalf("required: %v", res.Required)
	}
	if !strings.Contains(res.Graph, "constraint-relaxation") {
		t.Fatalf("graph: %q", res.Graph)
	}

	// The job shows up in the listing, without its (heavy) result.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	decodeBody(t, lresp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID || list.Jobs[0].Result != nil {
		t.Fatalf("listing: %+v", list)
	}
}

func TestExploreJobEventsStream(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})
	var sub jobs.Status
	decodeBody(t, postJSON(t, ts.URL+"/v1/explore", exploreBody(nil)), &sub)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var kinds []string
	lastSeq := -1
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("event sequence gap: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		kinds = append(kinds, ev.Kind)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The stream closes itself after the terminal event.
	if len(kinds) == 0 || kinds[len(kinds)-1] != "done" {
		t.Fatalf("stream kinds: %v", kinds)
	}
	sawNode := false
	for _, k := range kinds {
		if k == "node-evaluated" {
			sawNode = true
		}
	}
	if !sawNode {
		t.Fatalf("no node events in %v", kinds)
	}

	// A late subscriber replays the full history; ?from= skips a prefix.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events?from=" + fmt.Sprint(lastSeq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	var tail []string
	for sc2.Scan() {
		var ev jobs.Event
		json.Unmarshal(sc2.Bytes(), &ev)
		tail = append(tail, ev.Kind)
	}
	if fmt.Sprint(tail) != "[done]" {
		t.Fatalf("from=%d tail: %v", lastSeq, tail)
	}
}

// TestExploreEventsDisconnect pins the disconnect contract: a watcher that
// goes away mid-stream unsubscribes without leaking goroutines and without
// cancelling the job it was watching.
func TestExploreEventsDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()

	eng := engine.New(engine.WithWorkers(2))
	jm := jobs.NewManager(jobs.Options{})
	ts := httptest.NewServer(New(Options{Engine: eng, Jobs: jm}))

	var sub jobs.Status
	decodeBody(t, postJSON(t, ts.URL+"/v1/explore", exploreBody(nil)), &sub)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+sub.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line, then vanish.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first event: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()

	// The job must finish normally despite the watcher's disconnect.
	st := awaitJob(t, ts.URL, sub.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("job after disconnect: %s (%s)", st.State, st.Error)
	}

	// Teardown back to the pre-server baseline: every subscription,
	// forwarder and job goroutine must be gone.
	ts.Close()
	jm.Close()
	eng.Close()
	http.DefaultClient.CloseIdleConnections()
	settleGoroutines(t, baseline)
}

// TestExploreJobCancelAndResume drives DELETE + POST resume over HTTP.
// For determinism the submitted job is held in the queue behind a blocker
// job (one job slot), so the DELETE always lands on a live job; the resume
// then runs it to convergence. Mid-frontier cancellation and checkpoint
// equivalence are pinned at the jobs layer, where the builder can be
// gated.
func TestExploreJobCancelAndResume(t *testing.T) {
	ts, jm := newJobsServer(t, jobs.Options{MaxConcurrent: 1})

	// The blocker occupies the only job slot until released.
	release := make(chan struct{})
	blocker, err := jm.Submit("blocker", func(ctx context.Context, job *jobs.Job) (any, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	var sub jobs.Status
	decodeBody(t, postJSON(t, ts.URL+"/v1/explore", exploreBody(nil)), &sub)
	gresp0, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var queued jobs.Status
	decodeBody(t, gresp0, &queued)
	if queued.State != jobs.StateQueued {
		t.Fatalf("job should be queued behind the blocker: %+v", queued)
	}

	dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	st := awaitJob(t, ts.URL, sub.ID)
	if st.State != jobs.StateCancelled {
		t.Fatalf("after DELETE: %+v", st)
	}

	close(release)
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	rresp := func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs/"+sub.ID+"/resume", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}()
	if rresp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume status %d", rresp.StatusCode)
	}
	var rsub jobs.Status
	decodeBody(t, rresp, &rsub)
	if rsub.ResumedFrom != sub.ID {
		t.Fatalf("resumed from %q, want %q", rsub.ResumedFrom, sub.ID)
	}
	rst := awaitJob(t, ts.URL, rsub.ID)
	if rst.State != jobs.StateDone {
		t.Fatalf("resumed job: %s (%s)", rst.State, rst.Error)
	}
	raw, _ := json.Marshal(rst.Result)
	var res struct {
		Final struct {
			Key string `json:"key"`
		} `json:"final"`
	}
	json.Unmarshal(raw, &res)
	if res.Final.Key != "abort" {
		t.Fatalf("resumed final: %+v", res)
	}

	// DELETE on the (terminal) original now removes it from retention.
	dreq2, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	dresp2, err := http.DefaultClient.Do(dreq2)
	if err != nil {
		t.Fatal(err)
	}
	var rem map[string]any
	decodeBody(t, dresp2, &rem)
	if rem["removed"] != true {
		t.Fatalf("remove response: %v", rem)
	}
	gresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, gresp, http.StatusNotFound, "unknown job")
}

func TestExploreSubmitValidation(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})
	cases := []struct {
		name   string
		body   map[string]any
		status int
		substr string
	}{
		{"no space", map[string]any{"observations": exploreBody(nil)["observations"]},
			http.StatusBadRequest, "source (a DSL template) or catalog"},
		{"both spaces", exploreBody(map[string]any{"catalog": CatalogHaswellMMU}),
			http.StatusBadRequest, "not both"},
		{"unknown catalog", map[string]any{"catalog": "skylake"},
			http.StatusBadRequest, "unknown catalog"},
		{"no corpus", map[string]any{"source": exploreTemplate},
			http.StatusBadRequest, "uploaded corpus"},
		{"bad template", exploreBody(map[string]any{"source": "#if f\ndone;"}),
			http.StatusBadRequest, "never closed"},
		{"bad dsl", exploreBody(map[string]any{"source": "#if f\nnot dsl\n#endif"}),
			http.StatusBadRequest, ""},
		{"unknown candidate", exploreBody(map[string]any{"candidates": []string{"warp-drive"}}),
			http.StatusBadRequest, "unknown feature"},
		{"unknown initial", exploreBody(map[string]any{"initial": []string{"warp-drive"}}),
			http.StatusBadRequest, "unknown feature"},
		{"empty observation", exploreBody(map[string]any{"observations": []map[string]any{
			{"label": "empty", "events": []string{"load.causes_walk", "load.pde$_miss"}, "samples": [][]float64{}},
		}}), http.StatusBadRequest, ""},
		{"uncovered corpus", exploreBody(map[string]any{"observations": []*counters.Observation{
			func() *counters.Observation {
				o := counters.NewObservation("narrow", counters.NewSet("load.causes_walk"))
				o.Append([]float64{1})
				return o
			}(),
		}}), http.StatusBadRequest, "does not record model counters"},
		{"bad confidence", exploreBody(nil), http.StatusBadRequest, "confidence"},
	}
	for _, tc := range cases {
		url := ts.URL + "/v1/explore"
		if tc.name == "bad confidence" {
			url += "?confidence=7"
		}
		resp := postJSON(t, url, tc.body)
		wantError(t, resp, tc.status, tc.substr)
	}
}

// TestExploreRestrictedCandidatesValidation pins the validation scope:
// the corpus is checked against the searched space (initial ∪
// candidates), so counters used only by unsearched features must not
// cause a rejection.
func TestExploreRestrictedCandidatesValidation(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})
	// "wide" guards a counter the corpus does not record.
	src := `
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => {
        incr load.pde$_miss;
#if abort
        switch Abort { Yes => done; No => pass; };
#endif
    };
};
incr load.causes_walk;
#if wide
incr load.walk_done;
#endif
done;
`
	body := exploreBody(map[string]any{"source": src})

	// Searching everything needs load.walk_done: rejected.
	resp := postJSON(t, ts.URL+"/v1/explore", body)
	wantError(t, resp, http.StatusBadRequest, "does not record model counters")

	// Restricting the search away from "wide" makes the same corpus valid.
	body["candidates"] = []string{"abort"}
	resp = postJSON(t, ts.URL+"/v1/explore", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("restricted submission status %d", resp.StatusCode)
	}
	var sub jobs.Status
	decodeBody(t, resp, &sub)
	if st := awaitJob(t, ts.URL, sub.ID); st.State != jobs.StateDone {
		t.Fatalf("restricted search: %s (%s)", st.State, st.Error)
	}
}

func TestJobsNotFound(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/j999999"},
		{"GET", "/v1/jobs/j999999/events"},
		{"DELETE", "/v1/jobs/j999999"},
		{"POST", "/v1/jobs/j999999/resume"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		wantError(t, resp, http.StatusNotFound, "unknown job")
	}
}

func TestJobEventsBadFrom(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})
	var sub jobs.Status
	decodeBody(t, postJSON(t, ts.URL+"/v1/explore", exploreBody(nil)), &sub)
	awaitJob(t, ts.URL, sub.ID)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events?from=x")
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusBadRequest, "from must be")
}

// TestExploreCatalogSubmission checks the catalogue space with an uploaded
// corpus: validation runs against the full Table 3 model, so a pde-only
// corpus is rejected up front rather than failing asynchronously.
func TestExploreCatalogSubmission(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})
	resp := postJSON(t, ts.URL+"/v1/explore", map[string]any{
		"catalog": CatalogHaswellMMU,
		"observations": []*counters.Observation{
			obsAround("narrow", 500, 300, 50, 1),
		},
	})
	wantError(t, resp, http.StatusBadRequest, "does not record model counters")
}
