package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/jobs"
	"repro/internal/jobstore"
)

// durableServer wires a Server to a jobstore on a fault-injectable
// in-memory fs, with retry/backoff knobs tuned so tests never wait.
func durableServer(t *testing.T) (*Server, *jobstore.Store, *faultfs.Mem) {
	t.Helper()
	mem := faultfs.NewMem()
	st, err := jobstore.Open("jobs.db", jobstore.Options{
		FS:              mem,
		RetryAttempts:   1,
		RetryBackoff:    time.Microsecond,
		DegradedBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := jobs.NewManager(jobs.Options{Journal: st})
	t.Cleanup(func() { m.Close(); st.Close() })
	return New(Options{Jobs: m, JobStore: st}), st, mem
}

func doJSON(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	out := map[string]any{}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON body %q", method, path, w.Body.String())
	}
	return w, out
}

// TestHealthzDegradedBlockAndDurableSubmitShedding walks the degradation
// contract end to end on the HTTP surface: healthy durable daemon →
// store failure fails a submit with 503 + Retry-After → /healthz flips
// to "degraded" with the failure detail → further durable submits and
// resumes are shed without touching the store → a successful probe
// clears everything.
func TestHealthzDegradedBlockAndDurableSubmitShedding(t *testing.T) {
	s, st, mem := durableServer(t)

	w, h := doJSON(t, s, "GET", "/healthz", "")
	if w.Code != http.StatusOK || h["status"] != "ok" || h["durable"] != true {
		t.Fatalf("healthy healthz = %d %v", w.Code, h)
	}
	if _, ok := h["degraded"]; ok {
		t.Fatalf("healthy healthz carries a degraded block: %v", h)
	}

	mem.FailWrites(1<<30, errors.New("disk on fire"))
	mem.FailSyncs(1<<30, errors.New("disk on fire"))
	w, body := doJSON(t, s, "POST", "/v1/sweep", "{}")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit with failing journal = %d %v", w.Code, body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("journal-failure 503 missing Retry-After")
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "journal") {
		t.Fatalf("journal-failure error = %q", body["error"])
	}

	w, h = doJSON(t, s, "GET", "/healthz", "")
	if h["status"] != "degraded" {
		t.Fatalf("degraded healthz status = %v", h["status"])
	}
	deg, ok := h["degraded"].(map[string]any)
	if !ok {
		t.Fatalf("degraded healthz missing block: %v", h)
	}
	// retry_in_ms may already have counted down to omission under the
	// test's 1ms backoff; the countdown itself is unit-tested in jobstore.
	if deg["state"] != "degraded" || deg["last_error"] != "disk on fire" {
		t.Fatalf("degraded block = %v", deg)
	}

	_, stats := doJSON(t, s, "GET", "/stats", "")
	js, ok := stats["jobstore"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing jobstore block: %v", stats)
	}
	if js["degradations"].(float64) < 1 {
		t.Fatalf("jobstore stats = %v", js)
	}

	// Shed without touching the store: both durable endpoints.
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/sweep"},
		{"POST", "/v1/explore"},
		{"POST", "/v1/jobs/j000000/resume"},
	} {
		w, _ := doJSON(t, s, probe.method, probe.path, "{}")
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s while degraded = %d", probe.method, probe.path, w.Code)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatalf("%s %s while degraded missing Retry-After", probe.method, probe.path)
		}
	}

	// Recovery: the store heals, a probe append succeeds, healthz clears.
	mem.Heal()
	time.Sleep(5 * time.Millisecond)
	if err := st.JobSubmitted("jprobe1", "test", "", time.Now(), nil); err != nil {
		t.Fatalf("probe append after heal: %v", err)
	}
	w, h = doJSON(t, s, "GET", "/healthz", "")
	if h["status"] != "ok" {
		t.Fatalf("healthz after recovery = %v", h)
	}
	if _, ok := h["degraded"]; ok {
		t.Fatalf("healthz after recovery still degraded: %v", h)
	}
}

// TestJobsListRestoredMarker: jobs adopted from the journal carry the
// restored marker on /v1/jobs and /v1/jobs/{id}.
func TestJobsListRestoredMarker(t *testing.T) {
	m := jobs.NewManager(jobs.Options{})
	defer m.Close()
	now := time.Now()
	if _, err := m.Adopt(jobs.AdoptedJob{
		ID: "j000001", Kind: "sweep", State: jobs.StateDone,
		Created: now, Started: now, Finished: now,
	}); err != nil {
		t.Fatal(err)
	}
	s := New(Options{Jobs: m})

	_, list := doJSON(t, s, "GET", "/v1/jobs", "")
	arr, ok := list["jobs"].([]any)
	if !ok || len(arr) != 1 {
		t.Fatalf("jobs list = %v", list)
	}
	if job := arr[0].(map[string]any); job["restored"] != true {
		t.Fatalf("listed job missing restored marker: %v", job)
	}
	_, job := doJSON(t, s, "GET", "/v1/jobs/j000001", "")
	if job["restored"] != true {
		t.Fatalf("job status missing restored marker: %v", job)
	}
}
