package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// This file is the stream tier's concurrency/lifecycle regression suite,
// following the EvaluateStream leak-suite pattern in internal/engine:
// every way a stream can be walked away from — a producer disconnecting
// mid-ingest while blocked on a full queue, a close with samples still
// queued, an idle reap, a whole-server shutdown with live streams — must
// leave zero goroutines and lose zero queued observations.
// (settleGoroutines lives in server_test.go.)

// newLeakServer builds a stream server whose whole stack is torn down by
// the returned function — explicitly, so leak tests can assert the
// goroutine count settles before the test ends.
func newLeakServer(t *testing.T, opts ...func(*Options)) (*httptest.Server, *Server, func()) {
	t.Helper()
	eng := engine.New(engine.WithWorkers(2))
	o := Options{
		Engine:   eng,
		Defaults: engine.Config{IdentifyViolations: true},
		Catalog:  []Model{{Name: "pde", Source: pdeModelSrc}},
	}
	for _, f := range opts {
		f(&o)
	}
	srv := New(o)
	ts := httptest.NewServer(srv)
	return ts, srv, func() {
		ts.Close()
		srv.Close()
		eng.Close()
		http.DefaultClient.CloseIdleConnections()
	}
}

// TestStreamDisconnectMidIngest disconnects a block-policy producer
// while its enqueue is blocked on a full queue: the request goroutine
// must unblock via its context, nothing may leak, and the stream must
// keep serving afterwards.
func TestStreamDisconnectMidIngest(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		ts, _, teardown := newLeakServer(t)
		defer teardown()
		st := createStream(t, ts.URL, map[string]any{"model": "pde", "buffer": 1})

		// A body far beyond the queue keeps the handler blocked inside
		// enqueue; heavyweight observations keep the worker busy.
		var body strings.Builder
		for i := 0; i < 256; i++ {
			body.WriteString(ndjsonObs(fmt.Sprintf("o%d", i), 500, 100, 80, int64(i)))
			body.WriteString("\n")
		}
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/streams/"+st.ID+"/ingest", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		done := make(chan error, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- err
		}()
		time.Sleep(50 * time.Millisecond) // let the handler wedge on the full queue
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("disconnected ingest request never returned")
		}

		// The stream survives its producer: a fresh ingest still works.
		if _, sum := ingestLines(t, ts.URL, st.ID, ndjsonObs("after", 500, 100, 10, 999)); sum.Queued != 1 {
			t.Fatalf("post-disconnect ingest %+v", sum)
		}
	}()
	settleGoroutines(t, baseline)
}

// TestStreamCloseWithQueuedSamples closes a stream with a backlog still
// queued: every queued observation must be evaluated before the terminal
// event — close drains, it does not discard.
func TestStreamCloseWithQueuedSamples(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		ts, _, teardown := newLeakServer(t)
		defer teardown()
		st := createStream(t, ts.URL, map[string]any{"model": "pde", "buffer": 64})
		lines := make([]string, 32)
		for i := range lines {
			lines[i] = ndjsonObs(fmt.Sprintf("o%d", i), 500, 100, 60, int64(i))
		}
		_, sum := ingestLines(t, ts.URL, st.ID, lines...)
		if sum.Queued != 32 {
			t.Fatalf("summary %+v", sum)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+st.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// The terminal event arrives only after the backlog is drained;
		// its embedded state must count all 32 observations.
		evs := readEvents(t, ts.URL, st.ID, 0, 0)
		last := evs[len(evs)-1]
		if last.Kind != "closed" {
			t.Fatalf("last event %+v", last)
		}
		got := describeStream(t, ts.URL, st.ID)
		if got.State.Total != 32 || !got.Closed || got.CloseReason != "client" {
			t.Fatalf("drained stream %+v", got)
		}
	}()
	settleGoroutines(t, baseline)
}

// TestStreamIdleTTLReap drives the janitor with a fake clock: an idle
// live stream is closed with reason "idle" (counted as reaped), and once
// terminal and idle again it is removed entirely.
func TestStreamIdleTTLReap(t *testing.T) {
	now := time.Unix(1700000000, 0)
	ts, srv := newStreamServer(t, func(o *Options) {
		o.StreamIdleTTL = time.Minute
		o.streamNow = func() time.Time { return now }
	})
	st := createStream(t, ts.URL, map[string]any{"model": "pde"})

	// Activity inside the TTL keeps it alive.
	now = now.Add(30 * time.Second)
	if _, sum := ingestLines(t, ts.URL, st.ID, ndjsonObs("keep", 500, 100, 10, 1)); sum.Queued != 1 {
		t.Fatalf("summary %+v", sum)
	}
	waitTotal(t, ts.URL, st.ID, 1)
	now = now.Add(45 * time.Second)
	srv.streams.reap(now)
	if got := describeStream(t, ts.URL, st.ID); got.Closed {
		t.Fatalf("stream reaped with activity %v inside the TTL: %+v", 45*time.Second, got)
	}

	// Idle past the TTL: closed with reason "idle".
	now = now.Add(2 * time.Minute)
	srv.streams.reap(now)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := describeStream(t, ts.URL, st.ID)
		if got.Closed {
			if got.CloseReason != "idle" {
				t.Fatalf("close reason %q", got.CloseReason)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle stream never reaped: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stats := srv.streams.stats(); stats.Reaped != 1 {
		t.Fatalf("reaped counter %d", stats.Reaped)
	}

	// Terminal and idle again: removed from the listing.
	readEvents(t, ts.URL, st.ID, 0, 0) // wait for the terminal event
	now = now.Add(2 * time.Minute)
	srv.streams.reap(now)
	resp, err := http.Get(ts.URL + "/v1/streams/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusNotFound, "unknown stream")
}

// TestStreamServerShutdownWithLiveStreams closes the whole tier with
// live, loaded streams: Close must drain queued samples, mark every
// stream closed (reason "shutdown"), refuse new streams, and leave no
// goroutines behind.
func TestStreamServerShutdownWithLiveStreams(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		ts, srv, teardown := newLeakServer(t)
		defer teardown()
		ids := make([]string, 3)
		for i := range ids {
			st := createStream(t, ts.URL, map[string]any{"model": "pde", "buffer": 32})
			ids[i] = st.ID
			lines := make([]string, 8)
			for j := range lines {
				lines[j] = ndjsonObs(fmt.Sprintf("s%d-o%d", i, j), 500, 100, 40, int64(i*8+j))
			}
			if _, sum := ingestLines(t, ts.URL, st.ID, lines...); sum.Queued != 8 {
				t.Fatalf("summary %+v", sum)
			}
		}
		srv.Close()
		srv.Close() // idempotent
		for _, id := range ids {
			got := describeStream(t, ts.URL, id)
			if !got.Closed || got.CloseReason != "shutdown" || got.State.Total != 8 {
				t.Fatalf("stream %s after shutdown: %+v", id, got)
			}
		}
		resp := postJSON(t, ts.URL+"/v1/streams", map[string]any{"model": "pde"})
		wantError(t, resp, http.StatusServiceUnavailable, "shut down")
	}()
	settleGoroutines(t, baseline)
}

// TestStreamEventsWatcherDisconnect unsubscribes a live event watcher by
// client disconnect: the subscription goroutine must exit without
// touching the stream.
func TestStreamEventsWatcherDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		ts, _, teardown := newLeakServer(t)
		defer teardown()
		st := createStream(t, ts.URL, map[string]any{"model": "pde"})
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/streams/"+st.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		if _, err := resp.Body.Read(buf); err != nil { // the created event
			t.Fatal(err)
		}
		cancel()
		resp.Body.Close()
		// The stream is untouched by its watcher leaving.
		if got := describeStream(t, ts.URL, st.ID); got.Closed {
			t.Fatalf("watcher disconnect closed the stream: %+v", got)
		}
	}()
	settleGoroutines(t, baseline)
}
