package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
)

const pdeModelSrc = `
incr load.causes_walk;
do LookupPde$;
switch Pde$Status {
    Hit  => pass;
    Miss => incr load.pde$_miss;
};
done;
`

func pdeSet() *counters.Set {
	return counters.NewSet("load.causes_walk", "load.pde$_miss")
}

// obsAround synthesises an observation whose samples hover around (cw, pm):
// cw >= pm is consistent with the pde model, cw < pm refutes it.
func obsAround(label string, cw, pm float64, samples int, seed int64) *counters.Observation {
	o := counters.NewObservation(label, pdeSet())
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		o.Append([]float64{cw + rng.NormFloat64(), pm + rng.NormFloat64()})
	}
	return o
}

// newTestServer builds a service over a dedicated engine with the tiny pde
// model pre-seeded, torn down with the test.
func newTestServer(t *testing.T, opts ...func(*Options)) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.WithWorkers(2))
	t.Cleanup(eng.Close)
	o := Options{
		Engine:   eng,
		Defaults: engine.Config{IdentifyViolations: true},
		Catalog:  []Model{{Name: "pde", Source: pdeModelSrc}},
	}
	for _, f := range opts {
		f(&o)
	}
	srv := New(o)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func decodeBody(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// wantError asserts an error response with the given status whose JSON body
// mentions substr.
func wantError(t *testing.T, resp *http.Response, status int, substr string) {
	t.Helper()
	if resp.StatusCode != status {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, status, body)
	}
	var e errorJSON
	decodeBody(t, resp, &e)
	if !strings.Contains(e.Error, substr) {
		t.Fatalf("error %q does not mention %q", e.Error, substr)
	}
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthJSON
	decodeBody(t, resp, &h)
	if h.Status != "ok" || h.Models != 1 || h.Workers != 2 {
		t.Fatalf("health %+v", h)
	}
}

func TestListModels(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var l listJSON
	decodeBody(t, resp, &l)
	if len(l.Models) != 1 || l.Models[0] != "pde" {
		t.Fatalf("models %v", l.Models)
	}
}

func TestRegisterModel(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/models", registerJSON{Name: "tiny", Source: "incr a;\ndone;\n"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m modelSummaryJSON
	decodeBody(t, resp, &m)
	if m.Name != "tiny" || m.NumPaths != 1 || len(m.Counters) != 1 || m.Counters[0] != "a" {
		t.Fatalf("summary %+v", m)
	}
	// The registered model is immediately servable.
	resp, err := http.Get(ts.URL + "/v1/models/tiny")
	if err != nil {
		t.Fatal(err)
	}
	var d describeJSON
	decodeBody(t, resp, &d)
	if len(d.Signatures) != 1 {
		t.Fatalf("describe %+v", d)
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	ts := newTestServer(t)
	t.Run("bad DSL", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models", registerJSON{Name: "broken", Source: "switch {"})
		wantError(t, resp, http.StatusBadRequest, "broken")
	})
	t.Run("bad JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/models", "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		wantError(t, resp, http.StatusBadRequest, "decode")
	})
	t.Run("empty name", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models", registerJSON{Name: "", Source: "done;"})
		wantError(t, resp, http.StatusBadRequest, "name")
	})
	t.Run("unaddressable name", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models", registerJSON{Name: "a/b", Source: "done;"})
		wantError(t, resp, http.StatusBadRequest, "path-safe")
	})
	t.Run("duplicate name", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models", registerJSON{Name: "pde", Source: "done;"})
		wantError(t, resp, http.StatusConflict, "already registered")
	})
	// A failed registration must leave no half-registered entry behind.
	resp, err := http.Get(ts.URL + "/v1/models/broken")
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusNotFound, "unknown model")
}

func TestDescribeModel(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/models/pde")
	if err != nil {
		t.Fatal(err)
	}
	var d describeJSON
	decodeBody(t, resp, &d)
	if d.NumPaths != 2 {
		t.Fatalf("num_paths %d", d.NumPaths)
	}
	found := false
	for _, c := range d.Constraints {
		if c == "load.pde$_miss <= load.causes_walk" {
			found = true
		}
	}
	if !found {
		t.Fatalf("constraints %v missing the pde$ bound", d.Constraints)
	}
	// Two μpaths: walk without and with a pde$ miss.
	want := map[string]bool{"[1 0]": true, "[1 1]": true}
	if len(d.Signatures) != 2 || !want[fmt.Sprint(d.Signatures[0])] || !want[fmt.Sprint(d.Signatures[1])] {
		t.Fatalf("signatures %v", d.Signatures)
	}
}

func TestDescribeUnknownModel(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/models/nope")
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, resp, http.StatusNotFound, "unknown model")
}

func TestTestEndpoint(t *testing.T) {
	ts := newTestServer(t)
	t.Run("feasible", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models/pde/test", obsAround("ok", 500, 100, 80, 1))
		var v verdictJSON
		decodeBody(t, resp, &v)
		if !v.Feasible || v.Observation != "ok" {
			t.Fatalf("verdict %+v", v)
		}
	})
	t.Run("infeasible with violations", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models/pde/test", obsAround("bad", 100, 400, 80, 2))
		var v verdictJSON
		decodeBody(t, resp, &v)
		if v.Feasible {
			t.Fatal("anomalous observation judged feasible")
		}
		if len(v.Violations) == 0 || v.Violations[0] != "load.pde$_miss <= load.causes_walk" {
			t.Fatalf("violations %v", v.Violations)
		}
	})
	t.Run("violation identification off", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models/pde/test?identify=false", obsAround("bad", 100, 400, 80, 2))
		var v verdictJSON
		decodeBody(t, resp, &v)
		if v.Feasible || len(v.Violations) != 0 {
			t.Fatalf("verdict %+v", v)
		}
	})
	t.Run("bad body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/models/pde/test", "application/json", strings.NewReader(`{"label":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		wantError(t, resp, http.StatusBadRequest, "")
	})
	t.Run("empty observation", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/models/pde/test", "application/json",
			strings.NewReader(`{"label":"x","events":["a"],"samples":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		wantError(t, resp, http.StatusBadRequest, "no samples")
	})
	t.Run("unknown model", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models/nope/test", obsAround("ok", 500, 100, 10, 1))
		wantError(t, resp, http.StatusNotFound, "unknown model")
	})
	t.Run("bad confidence", func(t *testing.T) {
		for _, v := range []string{"2", "NaN", "-0.5", "x"} {
			resp := postJSON(t, ts.URL+"/v1/models/pde/test?confidence="+v, obsAround("ok", 500, 100, 10, 1))
			wantError(t, resp, http.StatusBadRequest, "confidence")
		}
	})
	t.Run("bad mode", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models/pde/test?mode=banana", obsAround("ok", 500, 100, 10, 1))
		wantError(t, resp, http.StatusBadRequest, "mode")
	})
}

func TestEvaluateJSONCorpus(t *testing.T) {
	ts := newTestServer(t)
	corpus := corpusJSON{Observations: []*counters.Observation{
		obsAround("ok1", 500, 100, 60, 1),
		obsAround("bad", 100, 400, 60, 2),
		obsAround("ok2", 300, 299, 60, 3),
	}}
	resp := postJSON(t, ts.URL+"/v1/models/pde/evaluate", corpus)
	var res corpusResultJSON
	decodeBody(t, resp, &res)
	if res.Model != "pde" || res.Total != 3 || res.Infeasible != 1 || res.Feasible {
		t.Fatalf("aggregate %+v", res)
	}
	if res.ViolatedConstraints["load.pde$_miss <= load.causes_walk"] != 1 {
		t.Fatalf("violations %v", res.ViolatedConstraints)
	}
	// Verdicts come back in corpus order.
	for i, want := range []string{"ok1", "bad", "ok2"} {
		if res.Verdicts[i].Observation != want {
			t.Fatalf("verdict %d is %q, want %q", i, res.Verdicts[i].Observation, want)
		}
	}
}

// multipartCorpus renders observations as a multipart CSV upload.
func multipartCorpus(t *testing.T, obs ...*counters.Observation) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, o := range obs {
		fw, err := mw.CreateFormFile("corpus", o.Label+".csv")
		if err != nil {
			t.Fatal(err)
		}
		if err := counters.WriteCSV(fw, o); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

func TestEvaluateMultipartCSV(t *testing.T) {
	ts := newTestServer(t)
	body, ctype := multipartCorpus(t,
		obsAround("ok", 500, 100, 60, 1),
		obsAround("bad", 100, 400, 60, 2),
	)
	resp, err := http.Post(ts.URL+"/v1/models/pde/evaluate", ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	var res corpusResultJSON
	decodeBody(t, resp, &res)
	if res.Total != 2 || res.Infeasible != 1 {
		t.Fatalf("aggregate %+v", res)
	}
	// Labels carry the uploaded filenames.
	if res.Verdicts[0].Observation != "ok.csv" || res.Verdicts[1].Observation != "bad.csv" {
		t.Fatalf("verdicts %+v", res.Verdicts)
	}
}

func TestEvaluateRejectsBadCorpus(t *testing.T) {
	ts := newTestServer(t)
	t.Run("malformed CSV", func(t *testing.T) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		fw, _ := mw.CreateFormFile("corpus", "broken.csv")
		fw.Write([]byte("a,b\n1,notanumber\n"))
		mw.Close()
		resp, err := http.Post(ts.URL+"/v1/models/pde/evaluate", mw.FormDataContentType(), &buf)
		if err != nil {
			t.Fatal(err)
		}
		wantError(t, resp, http.StatusBadRequest, "")
	})
	t.Run("empty corpus", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/models/pde/evaluate", corpusJSON{})
		wantError(t, resp, http.StatusBadRequest, "no observations")
	})
	t.Run("bad JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/models/pde/evaluate", "application/json", strings.NewReader("]"))
		if err != nil {
			t.Fatal(err)
		}
		wantError(t, resp, http.StatusBadRequest, "decode")
	})
	t.Run("null observation", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/models/pde/evaluate", "application/json",
			strings.NewReader(`{"observations":[null]}`))
		if err != nil {
			t.Fatal(err)
		}
		wantError(t, resp, http.StatusBadRequest, "null")
	})
}

// TestStreamOrdering drives the NDJSON endpoint over a single-worker
// engine: with batch=1 verdicts complete in submission order, so the
// streamed indices must be 0..n-1 in order, then the aggregate line.
func TestStreamOrdering(t *testing.T) {
	eng := engine.New(engine.WithWorkers(1))
	t.Cleanup(eng.Close)
	ts := newTestServer(t, func(o *Options) { o.Engine = eng })

	const n = 8
	corpus := corpusJSON{}
	for i := 0; i < n; i++ {
		corpus.Observations = append(corpus.Observations,
			obsAround(fmt.Sprintf("run-%d", i), 500, 100, 40, int64(i)))
	}
	resp := postJSON(t, ts.URL+"/v1/models/pde/evaluate/stream?batch=1", corpus)
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("content type %q", got)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []streamItemJSON
	for sc.Scan() {
		var item streamItemJSON
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, item)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != n+1 {
		t.Fatalf("streamed %d lines, want %d verdicts + 1 aggregate", len(lines), n)
	}
	for i, item := range lines[:n] {
		if item.Index == nil || *item.Index != i {
			t.Fatalf("line %d has index %v, want %d", i, item.Index, i)
		}
		if item.Observation != fmt.Sprintf("run-%d", i) {
			t.Fatalf("line %d is %q", i, item.Observation)
		}
		if item.Feasible == nil || !*item.Feasible {
			t.Fatalf("line %d not feasible: %+v", i, item)
		}
	}
	final := lines[n]
	if !final.Done || final.Total != n || final.Infeasible != 0 || final.Error != "" {
		t.Fatalf("aggregate %+v", final)
	}
}

// TestStreamEarlyExit checks first=true terminates the stream at the first
// refutation and still delivers the refuting verdict plus the aggregate.
func TestStreamEarlyExit(t *testing.T) {
	eng := engine.New(engine.WithWorkers(1))
	t.Cleanup(eng.Close)
	ts := newTestServer(t, func(o *Options) { o.Engine = eng })

	corpus := corpusJSON{Observations: []*counters.Observation{
		obsAround("bad", 100, 400, 60, 1),
	}}
	for i := 0; i < 32; i++ {
		corpus.Observations = append(corpus.Observations,
			obsAround(fmt.Sprintf("ok-%d", i), 500, 100, 60, int64(i+2)))
	}
	resp := postJSON(t, ts.URL+"/v1/models/pde/evaluate/stream?first=true&batch=1", corpus)
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sawBad, sawDone := false, false
	total := 0
	for sc.Scan() {
		var item streamItemJSON
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatal(err)
		}
		if item.Done {
			sawDone = true
			total = item.Total
			continue
		}
		if item.Feasible != nil && !*item.Feasible {
			sawBad = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawBad {
		t.Fatal("the refuting verdict never reached the stream")
	}
	if !sawDone {
		t.Fatal("the aggregate line never arrived")
	}
	if total == len(corpus.Observations) {
		t.Fatal("early exit evaluated the whole corpus")
	}
}

// TestStreamClientDisconnect closes the response mid-stream and requires
// the server-side evaluation to terminate without leaking goroutines: the
// request context cancels the engine stream.
func TestStreamClientDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()

	eng := engine.New(engine.WithWorkers(2))
	srv := New(Options{Engine: eng, Catalog: []Model{{Name: "pde", Source: pdeModelSrc}}})
	ts := httptest.NewServer(srv)

	// A corpus large enough that evaluation is still in flight when the
	// client walks away after two lines.
	corpus := corpusJSON{}
	for i := 0; i < 4096; i++ {
		corpus.Observations = append(corpus.Observations,
			obsAround(fmt.Sprintf("run-%d", i), 500, 100, 50, int64(i)))
	}
	body, err := json.Marshal(corpus)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models/pde/evaluate/stream?batch=1", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2 && sc.Scan(); i++ {
	}
	resp.Body.Close() // client disconnect: the handler's context ends

	// Teardown must not hang on an orphaned stream, and the goroutine
	// count must settle back to the pre-server baseline.
	ts.Close()
	eng.Close()
	http.DefaultClient.CloseIdleConnections()
	settleGoroutines(t, before)
}

// settleGoroutines waits for the goroutine count to return to the
// baseline, dumping stacks on timeout.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrencyCap checks requests beyond MaxConcurrent queue rather
// than run, and complete once slots free up.
func TestConcurrencyCap(t *testing.T) {
	ts := newTestServer(t, func(o *Options) { o.MaxConcurrent = 1 })
	corpus := corpusJSON{Observations: []*counters.Observation{
		obsAround("ok", 500, 100, 60, 1),
	}}
	body, err := json.Marshal(corpus)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/models/pde/evaluate", "application/json",
				bytes.NewReader(body))
			if err != nil {
				done <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				done <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRequestsDoNotPinCaches checks request payloads are treated as
// ephemeral: the engine's pointer-keyed region cache must stay empty no
// matter how many observations flow through, since per-request pointers
// can never produce a hit and would otherwise be retained until the cap
// disables caching for everyone.
func TestRequestsDoNotPinCaches(t *testing.T) {
	eng := engine.New(engine.WithWorkers(2))
	t.Cleanup(eng.Close)
	ts := newTestServer(t, func(o *Options) { o.Engine = eng })
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/models/pde/test", obsAround("ok", 500, 100, 60, int64(i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := eng.Regions().Len(); got != 0 {
		t.Fatalf("request observations pinned %d regions in the engine cache", got)
	}
}

// TestRejectsUnrecordedCounters checks observations missing model
// counters are refused rather than silently zero-filled into a
// confidently wrong verdict.
func TestRejectsUnrecordedCounters(t *testing.T) {
	ts := newTestServer(t)
	partial := counters.NewObservation("partial", counters.NewSet("load.causes_walk"))
	partial.Append([]float64{10})
	partial.Append([]float64{11})
	resp := postJSON(t, ts.URL+"/v1/models/pde/test", partial)
	wantError(t, resp, http.StatusBadRequest, "load.pde$_miss")
	// Same guard on the corpus endpoints.
	resp = postJSON(t, ts.URL+"/v1/models/pde/evaluate",
		corpusJSON{Observations: []*counters.Observation{obsAround("ok", 500, 100, 20, 1), partial}})
	wantError(t, resp, http.StatusBadRequest, "load.pde$_miss")
	// Extra recorded counters beyond the model's are fine (projected away).
	extra := counters.NewObservation("extra", counters.NewSet("load.causes_walk", "load.pde$_miss", "load.ret"))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		extra.Append([]float64{500 + rng.NormFloat64(), 100 + rng.NormFloat64(), 600 + rng.NormFloat64()})
	}
	resp = postJSON(t, ts.URL+"/v1/models/pde/test", extra)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("superset observation rejected: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}
