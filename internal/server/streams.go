package server

// The online-refutation stream API: a live ingest tier over
// engine.IncrementalSession. A stream binds one registered model to one
// evaluation configuration; observations arrive as NDJSON lines on
// POST /v1/streams/{id}/ingest, verdicts and monotone stream state flow
// out as events on GET /v1/streams/{id}/events, and the whole lifecycle
// (create / describe / close, idle-TTL reaping) is bounded: a per-stream
// queue no deeper than the configured high-water mark, a bounded event
// ring, and an explicit backpressure policy when the producer outruns
// the solver —
//
//   - "block"  (default): the ingest request stops reading until the
//     queue drains — backpressure propagates to the producer through
//     HTTP flow control;
//   - "drop":   the newest observation is dropped, counted, and reported
//     (a coalesced "dropped" event + the ingest summary + /stats);
//   - "reject": the ingest request fails fast with 429 at the first
//     full-queue line.
//
// Malformed ingest lines are never silently skipped: each one produces a
// per-line "error" event and an entry in the ingest summary. Stream
// verdict state is monotone (feasible → refuted is one-way) and
// bit-identical to a batch evaluation of the same observations — see
// engine.IncrementalSession and DESIGN.md "Online refutation".

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
)

// Stream-tier defaults.
const (
	// DefaultMaxStreams bounds concurrently open streams per server
	// (counterpointd -max-streams); creation beyond it is a 429.
	DefaultMaxStreams = 64
	// DefaultStreamBuffer is the per-stream queue capacity — the
	// high-water mark backpressure engages at (counterpointd
	// -stream-buffer). Per-stream overrides may only shrink it.
	DefaultStreamBuffer = 1024
	// DefaultStreamIdleTTL reaps streams with no ingest activity
	// (counterpointd -stream-ttl): live idle streams are closed, closed
	// ones are removed.
	DefaultStreamIdleTTL = 5 * time.Minute
	// DefaultMaxStreamLineBytes bounds one NDJSON ingest line; an
	// oversized line is a per-line error that ends the request (the line
	// boundary is lost past the cap, so resynchronisation is impossible).
	DefaultMaxStreamLineBytes = 1 << 20
	// streamEventLimit bounds the retained event ring per stream; late
	// subscribers to a hot stream replay only the retained tail.
	streamEventLimit = 4096
	// maxReportedLineErrors caps the per-line error detail echoed in one
	// ingest summary; the full count is always reported.
	maxReportedLineErrors = 100
)

// Backpressure policies.
const (
	PolicyBlock  = "block"
	PolicyDrop   = "drop"
	PolicyReject = "reject"
)

// enqueue dispositions.
type disposition int

const (
	dispQueued disposition = iota
	dispDropped
	dispFull   // reject policy: queue full
	dispClosed // stream closed while ingesting
)

// latencyHist is a lock-free log2-bucketed latency histogram: bucket i
// counts durations with bits.Len64(ns) == i, so quantiles resolve to the
// power-of-two upper bound of their bucket — coarse, but allocation-free
// on the hot path and monotone, which is all operational telemetry needs.
// The maximum is tracked exactly.
type latencyHist struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	maxNS   atomic.Uint64
}

func (h *latencyHist) record(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(ns)].Add(1)
	h.count.Add(1)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// quantile returns the upper bound (in ns) of the bucket holding the
// p-quantile observation, or 0 when nothing was recorded. The estimate
// is clamped to the exact maximum: when the quantile lands in the same
// bucket as the max, the bucket's power-of-two bound can exceed every
// duration actually observed, and a p50 above the max reads as
// nonsense.
func (h *latencyHist) quantile(p float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(p * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			ub := uint64(1) << i
			if max := h.maxNS.Load(); ub > max {
				return max
			}
			return ub
		}
	}
	return h.maxNS.Load()
}

// latencyJSON is the wire form of a latency histogram snapshot
// (microseconds; p50/p99 are log2-bucket upper bounds, max is exact).
type latencyJSON struct {
	Count    uint64  `json:"count"`
	P50Micro float64 `json:"p50_us"`
	P99Micro float64 `json:"p99_us"`
	MaxMicro float64 `json:"max_us"`
}

func (h *latencyHist) snapshot() latencyJSON {
	return latencyJSON{
		Count:    h.count.Load(),
		P50Micro: float64(h.quantile(0.50)) / 1e3,
		P99Micro: float64(h.quantile(0.99)) / 1e3,
		MaxMicro: float64(h.maxNS.Load()) / 1e3,
	}
}

// streamEvent is one entry in a stream's event log.
type streamEvent struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	Data any    `json:"data,omitempty"`
}

// eventLog is a bounded, replayable event ring: appenders drop the
// oldest retained event past the cap, subscribers replay the retained
// tail from their requested sequence number and then follow live until
// the terminal event. Modelled on jobs.Job's event log, but bounded —
// a 10k samples/sec stream would otherwise grow its history without
// limit, violating the per-stream memory bound.
type eventLog struct {
	mu       sync.Mutex
	cap      int
	events   []streamEvent // retained tail; events[0].Seq == first
	first    int
	next     int
	terminal bool
	wake     chan struct{}
}

func newEventLog(capacity int) *eventLog {
	return &eventLog{cap: capacity, wake: make(chan struct{})}
}

func (l *eventLog) append(kind string, data any, terminal bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.terminal {
		return
	}
	l.events = append(l.events, streamEvent{Seq: l.next, Kind: kind, Data: data})
	l.next++
	if len(l.events) > l.cap {
		drop := len(l.events) - l.cap
		l.events = append(l.events[:0], l.events[drop:]...)
		l.first += drop
	}
	l.terminal = terminal
	close(l.wake)
	l.wake = make(chan struct{})
}

func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// subscribe streams retained events with Seq >= from, then live events,
// closing after the terminal event has been delivered or ctx ends. The
// goroutine exits with the channel either way, so a handler tying ctx to
// its request context leaks nothing on client disconnect.
func (l *eventLog) subscribe(ctx context.Context, from int) <-chan streamEvent {
	out := make(chan streamEvent)
	go func() {
		defer close(out)
		next := from
		if next < 0 {
			next = 0
		}
		for {
			l.mu.Lock()
			if next < l.first {
				next = l.first // older events left the ring
			}
			var batch []streamEvent
			if next < l.next {
				batch = append(batch, l.events[next-l.first:]...)
			}
			terminal := l.terminal
			wake := l.wake
			l.mu.Unlock()
			for _, ev := range batch {
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
			next += len(batch)
			if terminal {
				return
			}
			select {
			case <-wake:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// queuedObs is one observation waiting for the stream worker, stamped at
// enqueue time so the recorded verdict latency covers queue wait + solve.
type queuedObs struct {
	o   *counters.Observation
	enq time.Time
}

// stream is one live ingest session: a bounded queue in front of a
// dedicated engine.IncrementalSession, drained by one worker goroutine
// so verdicts land in strict ingest order.
type stream struct {
	id      string
	model   *core.Model
	cfg     engine.Config
	policy  string
	buffer  int
	created time.Time

	mgr *streamManager
	inc *engine.IncrementalSession
	log *eventLog

	queue    chan queuedObs
	closedCh chan struct{} // closed exactly once, under qmu
	done     chan struct{} // worker exited (queue drained, terminal event appended)

	// ingestMu serialises ingest requests: concurrent POSTs to the same
	// stream would interleave lines nondeterministically, breaking the
	// no-reordering guarantee, so the second request waits.
	ingestMu sync.Mutex

	// qmu guards the closed transition and enqueue admission. A blocking
	// enqueue holds it across the channel send — close therefore cannot
	// race an in-flight send, and after closedCh is closed no sender can
	// be mid-send, so the worker's final drain observes every queued
	// observation.
	qmu         sync.Mutex
	closed      bool
	closeReason string

	lat latencyHist

	mu         sync.Mutex
	lastActive time.Time
	ingested   uint64 // observations queued
	dropped    uint64
	lineErrors uint64
	evalErrors uint64
	hwm        int
}

func (st *stream) isClosed() bool {
	st.qmu.Lock()
	defer st.qmu.Unlock()
	return st.closed
}

func (st *stream) terminal() bool {
	select {
	case <-st.done:
		return true
	default:
		return false
	}
}

func (st *stream) touch(now time.Time) {
	st.mu.Lock()
	st.lastActive = now
	st.mu.Unlock()
}

// enqueue admits one observation under the stream's backpressure policy.
func (st *stream) enqueue(ctx context.Context, o *counters.Observation) disposition {
	st.qmu.Lock()
	defer st.qmu.Unlock()
	if st.closed {
		return dispClosed
	}
	qo := queuedObs{o: o, enq: time.Now()}
	switch st.policy {
	case PolicyDrop, PolicyReject:
		select {
		case st.queue <- qo:
		default:
			if st.policy == PolicyDrop {
				st.mu.Lock()
				st.dropped++
				st.mu.Unlock()
				st.mgr.counts.dropped.Add(1)
				return dispDropped
			}
			return dispFull
		}
	default: // PolicyBlock
		select {
		case st.queue <- qo:
		case <-ctx.Done():
			return dispClosed
		}
	}
	now := st.mgr.now()
	st.mu.Lock()
	st.ingested++
	st.lastActive = now
	if d := len(st.queue); d > st.hwm {
		st.hwm = d
	}
	st.mu.Unlock()
	st.mgr.counts.ingested.Add(1)
	return dispQueued
}

// run is the stream worker: it drains the queue into the incremental
// session one observation at a time (strict FIFO — the no-reordering
// guarantee), and on close finishes the queued backlog before appending
// the terminal event. Exactly one worker runs per stream.
func (st *stream) run() {
	defer close(st.done)
	finish := func() {
		for {
			select {
			case qo := <-st.queue:
				st.process(qo)
			default:
				st.inc.Close()
				st.log.append("closed", map[string]any{
					"reason": st.closeReason,
					"state":  st.inc.State(),
				}, true)
				return
			}
		}
	}
	for {
		select {
		case qo := <-st.queue:
			st.process(qo)
		case <-st.closedCh:
			finish()
			return
		}
	}
}

// verdictEventJSON is the payload of one "verdict" event: the
// observation's verdict plus the monotone stream state after folding it
// in (confidence tightens with each refuting observation).
type verdictEventJSON struct {
	Index       int                `json:"index"`
	Observation string             `json:"observation"`
	Feasible    bool               `json:"feasible"`
	Violations  []string           `json:"violations,omitempty"`
	State       engine.StreamState `json:"state"`
}

func (st *stream) process(qo queuedObs) {
	res, err := st.inc.Ingest(context.Background(), qo.o)
	d := time.Since(qo.enq)
	st.lat.record(d)
	st.mgr.lat.record(d)
	if err != nil {
		st.mu.Lock()
		st.evalErrors++
		st.mu.Unlock()
		st.mgr.counts.evalErrors.Add(1)
		st.log.append("error", map[string]any{
			"observation": qo.o.Label,
			"error":       err.Error(),
		}, false)
		return
	}
	st.mgr.counts.verdicts.Add(1)
	ev := verdictEventJSON{
		Index:       res.Index,
		Observation: res.Verdict.Observation,
		Feasible:    res.Verdict.Feasible,
		State:       res.State,
	}
	for _, k := range res.Verdict.Violations {
		ev.Violations = append(ev.Violations, k.String())
	}
	st.log.append("verdict", ev, false)
}

// streamCounters is the manager-wide stream telemetry (GET /stats).
type streamCounters struct {
	created    atomic.Uint64
	closed     atomic.Uint64
	reaped     atomic.Uint64
	rejected   atomic.Uint64 // 429s: create over cap + reject-policy full queues
	ingested   atomic.Uint64
	verdicts   atomic.Uint64
	dropped    atomic.Uint64
	lineErrors atomic.Uint64
	evalErrors atomic.Uint64
}

// StreamCounts is a point-in-time snapshot of the stream tier's
// telemetry, shaped for JSON (counterpointd's /stats endpoint).
type StreamCounts struct {
	// Active counts open (unclosed) streams; Created/Closed/Reaped count
	// lifecycle transitions since boot (Reaped is the subset of Closed
	// performed by the idle-TTL janitor).
	Active  int    `json:"active"`
	Created uint64 `json:"created"`
	Closed  uint64 `json:"closed"`
	Reaped  uint64 `json:"reaped"`
	// Rejected counts 429 responses: stream creation over -max-streams
	// plus reject-policy ingests that hit a full queue.
	Rejected uint64 `json:"rejected"`
	// Ingested counts queued observations, Verdicts the evaluations that
	// completed, Dropped the drop-policy discards, LineErrors the
	// malformed NDJSON lines, EvalErrors failed evaluations.
	Ingested   uint64 `json:"ingested"`
	Verdicts   uint64 `json:"verdicts"`
	Dropped    uint64 `json:"dropped"`
	LineErrors uint64 `json:"line_errors"`
	EvalErrors uint64 `json:"eval_errors"`
	// QueueHighWater is the deepest any stream queue has been since boot
	// — by construction never above the configured buffer.
	QueueHighWater int `json:"queue_high_water"`
	// Latency aggregates ingest→verdict latency (queue wait + solve)
	// across every stream since boot.
	Latency latencyJSON `json:"latency"`
}

// streamManager owns the server's streams: creation against the cap,
// lookup, closing, and the idle-TTL janitor. The janitor starts lazily
// with the first stream and stops with the manager.
type streamManager struct {
	eng        *engine.Engine
	maxStreams int
	buffer     int
	idleTTL    time.Duration
	maxLine    int
	now        func() time.Time

	counts streamCounters
	lat    latencyHist

	mu          sync.Mutex
	streams     map[string]*stream
	order       []*stream
	nextID      int
	closed      bool
	janitorStop chan struct{}
	wg          sync.WaitGroup
}

func newStreamManager(eng *engine.Engine, maxStreams, buffer int, idleTTL time.Duration, now func() time.Time) *streamManager {
	if maxStreams <= 0 {
		maxStreams = DefaultMaxStreams
	}
	if buffer <= 0 {
		buffer = DefaultStreamBuffer
	}
	if idleTTL <= 0 {
		idleTTL = DefaultStreamIdleTTL
	}
	if now == nil {
		now = time.Now
	}
	return &streamManager{
		eng:        eng,
		maxStreams: maxStreams,
		buffer:     buffer,
		idleTTL:    idleTTL,
		maxLine:    DefaultMaxStreamLineBytes,
		now:        now,
		streams:    map[string]*stream{},
	}
}

// create opens a stream. A nil error means the stream's worker is
// running and the "created" event is in its log.
func (m *streamManager) create(model *core.Model, cfg engine.Config, policy string, buffer int) (*stream, error) {
	sess, err := m.eng.SessionFor(model, cfg)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errStreamsClosed
	}
	active := 0
	for _, st := range m.streams {
		if !st.isClosed() {
			active++
		}
	}
	if active >= m.maxStreams {
		m.counts.rejected.Add(1)
		return nil, errTooManyStreams
	}
	if buffer <= 0 || buffer > m.buffer {
		buffer = m.buffer
	}
	m.nextID++
	now := m.now()
	st := &stream{
		id:         fmt.Sprintf("s%06d", m.nextID),
		model:      model,
		cfg:        cfg,
		policy:     policy,
		buffer:     buffer,
		created:    now,
		lastActive: now,
		mgr:        m,
		inc:        sess.Incremental(),
		log:        newEventLog(streamEventLimit),
		queue:      make(chan queuedObs, buffer),
		closedCh:   make(chan struct{}),
		done:       make(chan struct{}),
	}
	m.streams[st.id] = st
	m.order = append(m.order, st)
	m.counts.created.Add(1)
	st.log.append("created", map[string]any{
		"stream": st.id,
		"model":  model.Name,
		"policy": policy,
		"buffer": buffer,
	}, false)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		st.run()
	}()
	if m.janitorStop == nil {
		m.janitorStop = make(chan struct{})
		m.wg.Add(1)
		go m.janitor(m.janitorStop)
	}
	return st, nil
}

var (
	errTooManyStreams = fmt.Errorf("server: stream cap reached")
	errStreamsClosed  = fmt.Errorf("server: stream tier shut down")
)

func (m *streamManager) get(id string) (*stream, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.streams[id]
	return st, ok
}

func (m *streamManager) list() []*stream {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*stream(nil), m.order...)
}

// closeStream transitions a stream to closed (idempotent); the worker
// drains the queued backlog, appends the terminal event and exits.
func (m *streamManager) closeStream(st *stream, reason string) bool {
	st.qmu.Lock()
	if st.closed {
		st.qmu.Unlock()
		return false
	}
	st.closed = true
	st.closeReason = reason
	close(st.closedCh)
	st.qmu.Unlock()
	st.touch(m.now())
	m.counts.closed.Add(1)
	return true
}

// remove unregisters a closed stream; its worker (if still draining)
// finishes on its own.
func (m *streamManager) remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.streams[id]; !ok {
		return
	}
	delete(m.streams, id)
	for i, st := range m.order {
		if st.id == id {
			m.order = append(m.order[:i:i], m.order[i+1:]...)
			break
		}
	}
}

// reap applies the idle TTL as of now: live streams with no ingest
// activity are closed (reason "idle"), terminal ones are removed.
// Exposed for tests; the janitor calls it on a timer.
func (m *streamManager) reap(now time.Time) {
	cutoff := now.Add(-m.idleTTL)
	for _, st := range m.list() {
		st.mu.Lock()
		last := st.lastActive
		st.mu.Unlock()
		if !last.Before(cutoff) {
			continue
		}
		if !st.isClosed() {
			if m.closeStream(st, "idle") {
				m.counts.reaped.Add(1)
			}
		} else if st.terminal() {
			m.remove(st.id)
		}
	}
}

func (m *streamManager) janitor(stop chan struct{}) {
	defer m.wg.Done()
	interval := m.idleTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.reap(m.now())
		case <-stop:
			return
		}
	}
}

// close shuts the stream tier down: every stream is closed (reason
// "shutdown"), the janitor stops, and close blocks until every worker
// has drained its backlog and exited. Idempotent.
func (m *streamManager) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	stop := m.janitorStop
	m.janitorStop = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	for _, st := range m.list() {
		m.closeStream(st, "shutdown")
	}
	m.wg.Wait()
}

func (m *streamManager) stats() StreamCounts {
	active := 0
	hwm := 0
	for _, st := range m.list() {
		if !st.isClosed() {
			active++
		}
		st.mu.Lock()
		if st.hwm > hwm {
			hwm = st.hwm
		}
		st.mu.Unlock()
	}
	return StreamCounts{
		Active:         active,
		Created:        m.counts.created.Load(),
		Closed:         m.counts.closed.Load(),
		Reaped:         m.counts.reaped.Load(),
		Rejected:       m.counts.rejected.Load(),
		Ingested:       m.counts.ingested.Load(),
		Verdicts:       m.counts.verdicts.Load(),
		Dropped:        m.counts.dropped.Load(),
		LineErrors:     m.counts.lineErrors.Load(),
		EvalErrors:     m.counts.evalErrors.Load(),
		QueueHighWater: hwm,
		Latency:        m.lat.snapshot(),
	}
}

// --- HTTP surface ---

// streamJSON is the describe/list wire form of one stream.
type streamJSON struct {
	ID                  string             `json:"id"`
	Model               string             `json:"model"`
	Policy              string             `json:"policy"`
	Buffer              int                `json:"buffer"`
	State               engine.StreamState `json:"state"`
	ViolatedConstraints map[string]int     `json:"violated_constraints,omitempty"`
	Depth               int                `json:"depth"`
	HighWater           int                `json:"high_water"`
	Ingested            uint64             `json:"ingested"`
	Dropped             uint64             `json:"dropped"`
	LineErrors          uint64             `json:"line_errors"`
	EvalErrors          uint64             `json:"eval_errors"`
	Events              int                `json:"events"`
	Closed              bool               `json:"closed"`
	CloseReason         string             `json:"close_reason,omitempty"`
	Created             time.Time          `json:"created"`
	LastActive          time.Time          `json:"last_active"`
	Latency             latencyJSON        `json:"latency"`
}

func (st *stream) describe() streamJSON {
	st.qmu.Lock()
	closed, reason := st.closed, st.closeReason
	st.qmu.Unlock()
	st.mu.Lock()
	out := streamJSON{
		ID:          st.id,
		Model:       st.model.Name,
		Policy:      st.policy,
		Buffer:      st.buffer,
		Depth:       len(st.queue),
		HighWater:   st.hwm,
		Ingested:    st.ingested,
		Dropped:     st.dropped,
		LineErrors:  st.lineErrors,
		EvalErrors:  st.evalErrors,
		Closed:      closed,
		CloseReason: reason,
		Created:     st.created,
		LastActive:  st.lastActive,
	}
	st.mu.Unlock()
	out.State = st.inc.State()
	if v := st.inc.Violated(); len(v) > 0 {
		out.ViolatedConstraints = v
	}
	out.Events = st.log.len()
	out.Latency = st.lat.snapshot()
	return out
}

// --- POST /v1/streams ---

type streamCreateJSON struct {
	Model string `json:"model"`
	// Policy selects the backpressure behaviour: "block" (default),
	// "drop" or "reject".
	Policy string `json:"policy,omitempty"`
	// Buffer shrinks the per-stream queue below the server's
	// -stream-buffer (values above it, or 0, use the server default).
	Buffer int `json:"buffer,omitempty"`
}

func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	var req streamCreateJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	e, err := s.reg.Get(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	m, err := e.Model()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	cfg, err := s.requestConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch req.Policy {
	case "":
		req.Policy = PolicyBlock
	case PolicyBlock, PolicyDrop, PolicyReject:
	default:
		writeError(w, http.StatusBadRequest,
			"unknown policy %q (want %q, %q or %q)", req.Policy, PolicyBlock, PolicyDrop, PolicyReject)
		return
	}
	if req.Buffer < 0 {
		writeError(w, http.StatusBadRequest, "buffer must be non-negative, got %d", req.Buffer)
		return
	}
	st, err := s.streams.create(m, cfg, req.Policy, req.Buffer)
	switch {
	case err == errTooManyStreams:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"stream cap reached (%d active; server -max-streams); close one or retry later", s.streams.maxStreams)
		return
	case err == errStreamsClosed:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, st.describe())
}

// --- GET /v1/streams ---

type streamListJSON struct {
	Streams []streamJSON `json:"streams"`
}

func (s *Server) handleStreamList(w http.ResponseWriter, r *http.Request) {
	out := streamListJSON{Streams: []streamJSON{}}
	for _, st := range s.streams.list() {
		out.Streams = append(out.Streams, st.describe())
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupStream resolves the {id} path value, writing the 404 when it
// cannot.
func (s *Server) lookupStream(w http.ResponseWriter, r *http.Request) (*stream, bool) {
	id := r.PathValue("id")
	st, ok := s.streams.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", id)
		return nil, false
	}
	return st, true
}

// --- GET /v1/streams/{id} ---

func (s *Server) handleStreamDescribe(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, st.describe())
}

// --- POST /v1/streams/{id}/ingest ---

// lineErrorJSON reports one malformed NDJSON line in an ingest summary.
type lineErrorJSON struct {
	Line  int    `json:"line"`
	Error string `json:"error"`
}

// ingestSummaryJSON is the ingest response: the disposition of every
// line of the request body. received = queued + dropped + rejected +
// error_lines; blank lines are ignored and counted by none of them.
type ingestSummaryJSON struct {
	Stream     string          `json:"stream"`
	Received   int             `json:"received"`
	Queued     int             `json:"queued"`
	Dropped    int             `json:"dropped,omitempty"`
	Rejected   int             `json:"rejected,omitempty"`
	ErrorLines int             `json:"error_lines,omitempty"`
	Errors     []lineErrorJSON `json:"errors,omitempty"`
	// State snapshots the stream verdict state at response time; queued
	// observations not yet evaluated are not in it (follow the events
	// stream for the verdict-by-verdict view).
	State engine.StreamState `json:"state"`
}

// decodeStreamObs decodes and validates one NDJSON ingest line against
// the stream's model: well-formed observation JSON, at least one sample,
// and coverage of every model counter.
func decodeStreamObs(line []byte, m *core.Model) (*counters.Observation, error) {
	var o counters.Observation
	if err := json.Unmarshal(line, &o); err != nil {
		return nil, err
	}
	if o.Len() == 0 {
		return nil, fmt.Errorf("observation %q has no samples", o.Label)
	}
	if missing := missingCounters(m, &o); len(missing) > 0 {
		return nil, fmt.Errorf("observation %q does not record model counters %v", o.Label, missing)
	}
	return &o, nil
}

// scanNDJSON drives one ingest body: each non-blank line is decoded and
// validated, then handed to deliver; malformed lines go to onError with
// their 1-based line number and are never silently skipped. deliver
// returning false stops the scan (reject-policy full queue, closed
// stream). Returns the non-blank line count and the scanner error, which
// is bufio.ErrTooLong for an oversized line — the line boundary is lost,
// so the scan cannot resynchronise and stops.
func scanNDJSON(r io.Reader, maxLine int, m *core.Model, deliver func(line int, o *counters.Observation) bool, onError func(line int, err error)) (int, error) {
	sc := bufio.NewScanner(r)
	// The scanner's effective cap is max(cap(buf), maxLine) — keep the
	// initial buffer at or under maxLine so the cap actually binds.
	initial := 64 * 1024
	if initial > maxLine {
		initial = maxLine
	}
	sc.Buffer(make([]byte, initial), maxLine)
	received := 0
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		received++
		o, err := decodeStreamObs(b, m)
		if err != nil {
			onError(line, err)
			continue
		}
		if !deliver(line, o) {
			break
		}
	}
	return received, sc.Err()
}

func (s *Server) handleStreamIngest(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	if st.isClosed() {
		writeError(w, http.StatusConflict, "stream %s is closed", st.id)
		return
	}
	// One ingest request at a time per stream: concurrent bodies would
	// interleave observations nondeterministically.
	st.ingestMu.Lock()
	defer st.ingestMu.Unlock()

	sum := ingestSummaryJSON{Stream: st.id}
	status := http.StatusOK
	onError := func(line int, err error) {
		sum.ErrorLines++
		st.mu.Lock()
		st.lineErrors++
		st.mu.Unlock()
		s.streams.counts.lineErrors.Add(1)
		if len(sum.Errors) < maxReportedLineErrors {
			sum.Errors = append(sum.Errors, lineErrorJSON{Line: line, Error: err.Error()})
		}
		st.log.append("error", map[string]any{"line": line, "error": err.Error()}, false)
	}
	deliver := func(line int, o *counters.Observation) bool {
		switch st.enqueue(r.Context(), o) {
		case dispQueued:
			sum.Queued++
			return true
		case dispDropped:
			sum.Dropped++
			return true
		case dispFull:
			sum.Rejected++
			s.streams.counts.rejected.Add(1)
			status = http.StatusTooManyRequests
			return false
		default: // dispClosed
			sum.Rejected++
			status = http.StatusConflict
			return false
		}
	}
	received, scanErr := scanNDJSON(r.Body, s.streams.maxLine, st.model, deliver, onError)
	sum.Received = received
	if scanErr == bufio.ErrTooLong {
		onError(received+1, fmt.Errorf("line exceeds %d bytes; ingest aborted", s.streams.maxLine))
	}
	if sum.Dropped > 0 {
		st.log.append("dropped", map[string]any{"count": sum.Dropped}, false)
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	sum.State = st.inc.State()
	writeJSON(w, status, sum)
}

// --- GET /v1/streams/{id}/events ---

func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "from must be a non-negative integer, got %q", v)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	// The subscription runs under the request context: a disconnected
	// watcher unsubscribes without touching the stream itself.
	for ev := range st.log.subscribe(r.Context(), from) {
		if err := enc.Encode(ev); err != nil {
			return
		}
		rc.Flush()
	}
}

// --- DELETE /v1/streams/{id} ---

type streamDeleteJSON struct {
	ID      string `json:"id"`
	Closed  bool   `json:"closed,omitempty"`
	Removed bool   `json:"removed,omitempty"`
}

// handleStreamDelete closes a live stream (its queued backlog is still
// evaluated; the terminal "closed" event follows the last verdict) or
// removes an already-closed one from the listing.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookupStream(w, r)
	if !ok {
		return
	}
	if s.streams.closeStream(st, "client") {
		writeJSON(w, http.StatusOK, streamDeleteJSON{ID: st.id, Closed: true})
		return
	}
	s.streams.remove(st.id)
	writeJSON(w, http.StatusOK, streamDeleteJSON{ID: st.id, Removed: true})
}
