package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dsl"
)

// Registry errors, mapped to HTTP statuses by the handlers.
var (
	// ErrUnknownModel reports a lookup of a name that was never registered.
	ErrUnknownModel = errors.New("server: unknown model")
	// ErrModelExists reports a registration under a taken name.
	ErrModelExists = errors.New("server: model already registered")
)

// Entry is one named model held by a Registry: its DSL source plus the
// compiled model, materialised at most once. Catalog seeds compile lazily
// on first request so boot stays instant; uploads compile eagerly so bad
// DSL is rejected at registration time.
type Entry struct {
	Name   string
	Source string

	once  sync.Once
	model *core.Model
	err   error
}

// Model returns the compiled model, compiling the source on first call.
// Every subsequent caller — and therefore every session and engine cache
// keyed by model pointer — shares the one instance.
func (e *Entry) Model() (*core.Model, error) {
	e.once.Do(func() {
		d, err := dsl.Compile(e.Name, e.Source)
		if err != nil {
			e.err = fmt.Errorf("server: model %q: %w", e.Name, err)
			return
		}
		e.model, e.err = core.NewModel(e.Name, d, nil)
	})
	return e.model, e.err
}

// Registry holds the named models a server instance serves. It is safe for
// concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Seed adds an entry without compiling it, for boot-time catalogues whose
// sources are known-good. Existing names are left untouched.
func (r *Registry) Seed(name, source string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		r.entries[name] = &Entry{Name: name, Source: source}
	}
}

// validName rejects names that could not be addressed through the
// /v1/models/{name} routes: empty strings, path separators, and
// whitespace or control characters.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("server: model name must not be empty")
	}
	for _, c := range name {
		if c == '/' || c == '\\' || c <= ' ' || c == 0x7f {
			return fmt.Errorf("server: model name %q contains %q; names must be path-safe", name, c)
		}
	}
	return nil
}

// Register compiles source and adds it under name. The compile happens
// before the name is claimed, so a failed registration leaves no trace; a
// duplicate name fails with ErrModelExists without recompiling anything.
func (r *Registry) Register(name, source string) (*Entry, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.RLock()
	_, taken := r.entries[name]
	r.mu.RUnlock()
	if taken {
		return nil, fmt.Errorf("%w: %q", ErrModelExists, name)
	}
	e := &Entry{Name: name, Source: source}
	if _, err := e.Model(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.entries[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrModelExists, name)
	}
	r.entries[name] = e
	return e, nil
}

// Get returns the entry registered under name.
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return e, nil
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
