package server

import (
	"net/http"
	"testing"

	"repro/internal/counters"
)

type statsResp struct {
	Evaluations      uint64 `json:"evaluations"`
	FilterFeasible   uint64 `json:"filter_feasible"`
	FilterInfeasible uint64 `json:"filter_infeasible"`
	CertFailures     uint64 `json:"certification_failures"`
	ExactFallbacks   uint64 `json:"exact_fallbacks"`
	FilterHits       uint64 `json:"filter_hits"`
	Models           int    `json:"models"`
	Workers          int    `json:"workers"`

	KernelFastSolves     uint64 `json:"kernel_fast_solves"`
	KernelPromotedSolves uint64 `json:"kernel_promoted_solves"`
	KernelPromotions     uint64 `json:"kernel_promotions"`
	CertifyKernel        uint64 `json:"certifications_int64"`
	CertifyBigRat        uint64 `json:"certifications_bigrat"`
}

func getStats(t *testing.T, base string) statsResp {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: status %d", resp.StatusCode)
	}
	var s statsResp
	decodeBody(t, resp, &s)
	return s
}

// TestStatsEndpoint drives verdicts through the service and checks the
// solver telemetry moves with them: evaluations accumulate, filter hits and
// exact fallbacks partition them, and ?exact=true routes around the filter.
func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)

	s0 := getStats(t, ts.URL)
	if s0.Evaluations != 0 || s0.Models != 1 || s0.Workers != 2 {
		t.Fatalf("fresh stats: %+v", s0)
	}

	corpus := corpusJSON{Observations: []*counters.Observation{
		obsAround("ok", 500, 100, 50, 1),
		obsAround("bad", 100, 400, 50, 2),
	}}
	resp := postJSON(t, ts.URL+"/v1/models/pde/evaluate", corpus)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	s1 := getStats(t, ts.URL)
	if s1.Evaluations != 2 {
		t.Fatalf("evaluations %d, want 2", s1.Evaluations)
	}
	if s1.FilterHits != s1.FilterFeasible+s1.FilterInfeasible {
		t.Fatalf("filter_hits %d does not match %d+%d", s1.FilterHits, s1.FilterFeasible, s1.FilterInfeasible)
	}
	if s1.FilterHits+s1.ExactFallbacks != s1.Evaluations {
		t.Fatalf("counters don't partition: %+v", s1)
	}
	// The int64 kernel accounts for every exact-tier solve, and the
	// promotion (overflow fallback) rate is reported, never hidden.
	if s1.KernelFastSolves+s1.KernelPromotedSolves != s1.ExactFallbacks {
		t.Fatalf("kernel counters don't cover exact solves: %+v", s1)
	}
	// Certification counters partition the certificate checks (one per
	// filter hit or certification failure).
	if s1.CertifyKernel+s1.CertifyBigRat != s1.FilterHits+s1.CertFailures {
		t.Fatalf("certification counters don't partition: %+v", s1)
	}

	// Forcing exact mode per request must add only exact fallbacks.
	resp = postJSON(t, ts.URL+"/v1/models/pde/evaluate?exact=true", corpus)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate?exact=true: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	s2 := getStats(t, ts.URL)
	if s2.Evaluations != 4 {
		t.Fatalf("evaluations %d, want 4", s2.Evaluations)
	}
	if s2.FilterHits != s1.FilterHits {
		t.Fatalf("exact-mode request changed filter hits: %d -> %d", s1.FilterHits, s2.FilterHits)
	}
	if s2.ExactFallbacks != s1.ExactFallbacks+2 {
		t.Fatalf("exact fallbacks %d, want %d", s2.ExactFallbacks, s1.ExactFallbacks+2)
	}

	// Malformed exact override is a client error.
	resp = postJSON(t, ts.URL+"/v1/models/pde/evaluate?exact=maybe", corpus)
	wantError(t, resp, http.StatusBadRequest, "exact")
}
