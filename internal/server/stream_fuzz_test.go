package server

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/counters"
)

// FuzzStreamNDJSON fuzzes the ingest decoder with arbitrary byte
// streams, mirroring the FuzzReadCSV contract in internal/counters:
// malformed input — torn lines, NaN/Inf sample values, unknown
// counters, empty sample sets, oversized lines — must surface as a
// per-line error, never a panic and never a silently skipped sample.
// The accounting invariant is total: every non-blank line is either
// delivered (and then satisfies every invariant the stream worker
// relies on) or reported to the error callback, and the whole scan is
// deterministic.
func FuzzStreamNDJSON(f *testing.F) {
	m, err := core.ModelFromDSL("pde", pdeModelSrc, pdeSet())
	if err != nil {
		f.Fatal(err)
	}
	const maxLine = 1 << 10

	valid := `{"label":"ok","events":["load.causes_walk","load.pde$_miss"],"samples":[[10,2],[11,3]]}`
	f.Add([]byte(valid))
	f.Add([]byte(valid + "\n" + valid + "\n"))
	f.Add([]byte(`{"label":"torn","events":["load.causes_walk"`))                                       // torn JSON
	f.Add([]byte(`{"label":"nan","events":["load.causes_walk","load.pde$_miss"],"samples":[[NaN,1]]}`)) // NaN literal
	f.Add([]byte(`{"label":"inf","events":["load.causes_walk","load.pde$_miss"],"samples":[[1,Inf]]}`))
	f.Add([]byte(`{"label":"alien","events":["cpu.cycles"],"samples":[[1],[2]]}`))     // unknown counters
	f.Add([]byte(`{"label":"missing","events":["load.causes_walk"],"samples":[[1]]}`)) // partial coverage
	f.Add([]byte(`{"label":"empty","events":["load.causes_walk","load.pde$_miss"],"samples":[]}`))
	f.Add([]byte(`{"label":"dup","events":["load.causes_walk","load.causes_walk"],"samples":[[1,1]]}`))
	f.Add([]byte(`{"label":"ragged","events":["load.causes_walk","load.pde$_miss"],"samples":[[1],[1,2]]}`))
	f.Add([]byte("\n\n  \n")) // blank lines only
	f.Add([]byte(`{"label":"big","events":["load.causes_walk","load.pde$_miss"],"samples":[[` +
		strings.Repeat("1,", maxLine) + `1]]}`)) // oversized line
	f.Add([]byte("\x00\xff\xfe junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		scan := func() (received, delivered, errored int, scanErr error) {
			received, scanErr = scanNDJSON(bytes.NewReader(data), maxLine, m,
				func(line int, o *counters.Observation) bool {
					delivered++
					if line <= 0 {
						t.Fatalf("delivered line number %d", line)
					}
					// The worker's invariants: a delivered observation is
					// non-nil, has samples, and covers the model counters.
					if o == nil || o.Len() == 0 {
						t.Fatalf("delivered invalid observation %+v", o)
					}
					if missing := missingCounters(m, o); len(missing) > 0 {
						t.Fatalf("delivered observation missing counters %v", missing)
					}
					return true
				},
				func(line int, err error) {
					errored++
					if line <= 0 || err == nil {
						t.Fatalf("error callback line %d err %v", line, err)
					}
				})
			return
		}
		received, delivered, errored, scanErr := scan()
		if scanErr != nil && scanErr != bufio.ErrTooLong {
			t.Fatalf("scan error %v (only ErrTooLong is possible from a byte reader)", scanErr)
		}
		// Total accounting: nothing is silently skipped.
		if received != delivered+errored {
			t.Fatalf("%d non-blank lines but %d delivered + %d errored", received, delivered, errored)
		}
		// Determinism: a second scan of the same bytes agrees exactly.
		r2, d2, e2, s2 := scan()
		if r2 != received || d2 != delivered || e2 != errored || s2 != scanErr {
			t.Fatalf("scan not deterministic: (%d,%d,%d,%v) then (%d,%d,%d,%v)",
				received, delivered, errored, scanErr, r2, d2, e2, s2)
		}
	})
}

// TestScanNDJSONStopsOnDeliverFalse pins the early-stop contract the
// reject policy depends on: a false return stops the scan immediately,
// and lines past the stop are not counted as received.
func TestScanNDJSONStopsOnDeliverFalse(t *testing.T) {
	m, err := core.ModelFromDSL("pde", pdeModelSrc, pdeSet())
	if err != nil {
		t.Fatal(err)
	}
	body := strings.Join([]string{
		ndjsonObs("a", 500, 100, 4, 1),
		ndjsonObs("b", 500, 100, 4, 2),
		ndjsonObs("c", 500, 100, 4, 3),
	}, "\n")
	calls := 0
	received, scanErr := scanNDJSON(strings.NewReader(body), 1<<20, m,
		func(int, *counters.Observation) bool { calls++; return calls < 2 },
		func(int, error) { t.Fatal("no malformed lines in this body") })
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	if calls != 2 || received != 2 {
		t.Fatalf("deliver calls %d received %d, want 2 and 2", calls, received)
	}
}
