// Package server is counterpointd's HTTP/JSON feasibility service: a
// network-facing surface over internal/engine, so verdicts no longer
// require a local Go caller.
//
// A Server owns a Registry of named models (seeded from the haswell
// catalogue at boot, extended by uploads) and one long-lived Engine whose
// region/LP/model caches amortise across requests — the steady state the
// paper's Figure 9 sweeps characterise. Each (model, Config) pair shares a
// single engine session via Engine.SessionFor, so concurrent requests
// against the same model hit warm caches instead of rebuilding them.
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/models                      list registered model names
//	POST /v1/models                      compile + register DSL source
//	GET  /v1/models/{name}               constraints and counter signatures
//	POST /v1/models/{name}/test          one observation -> one verdict
//	POST /v1/models/{name}/evaluate      corpus (JSON or multipart CSV) -> aggregate
//	POST /v1/models/{name}/evaluate/stream  corpus -> NDJSON verdict stream
//	POST /v1/explore                     submit an exploration job
//	POST /v1/sweep                       submit a hidden-event-space sweep job
//	GET  /v1/jobs                        list jobs
//	GET  /v1/jobs/{id}                   job status and result
//	GET  /v1/jobs/{id}/events            NDJSON progress stream (replay + live)
//	POST /v1/jobs/{id}/resume            resume a terminal job from its checkpoint
//	DELETE /v1/jobs/{id}                 cancel a running job / drop a finished one
//	POST /v1/streams                     open an online-refutation stream
//	GET  /v1/streams                     list streams
//	GET  /v1/streams/{id}                stream state, depth, latency telemetry
//	POST /v1/streams/{id}/ingest         NDJSON observations in (bounded queue)
//	GET  /v1/streams/{id}/events         NDJSON verdict/state events out
//	DELETE /v1/streams/{id}              close a live stream / drop a closed one
//	GET  /healthz                        liveness and cache statistics
//	GET  /stats                          engine solver telemetry (two-tier counters)
//
// Evaluation endpoints accept per-request overrides as query parameters:
// confidence, mode (correlated|independent), identify, first, batch, exact
// (force the exact LP tier, bypassing the float filter).
// Streaming honours client disconnects: when the request context ends the
// underlying engine stream is cancelled and its goroutines exit. The jobs
// endpoints are the asynchronous counterpart (see jobs.go and
// internal/jobs): exploration searches outlive any one request, progress
// streams replay and resume, and a disconnected watcher never cancels the
// job it was watching. POST /v1/sweep scans a raw event×umask×cmask config
// grid for encodings consistent with the page-walker reference count
// (sweep.go and internal/sweep); sweeps share the engine, so their grid-
// cell dedup shows up in /stats. The /v1/streams endpoints are the online
// counterpart of batch evaluation: each stream wraps an
// engine.IncrementalSession behind a bounded queue with an explicit
// backpressure policy, and its monotone verdict state is bit-identical
// to a batch evaluation of the same observations (streams.go). See
// docs/API.md for the full endpoint reference.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/jobstore"
	"repro/internal/stats"
)

// DefaultMaxBodyBytes bounds request bodies (corpus uploads included)
// unless Options.MaxBodyBytes says otherwise.
const DefaultMaxBodyBytes = 64 << 20

// Model is a (name, DSL source) pair for seeding a server's registry.
type Model struct {
	Name   string
	Source string
}

// Options configures a Server.
type Options struct {
	// Engine is the evaluation runtime; nil uses engine.Default().
	Engine *engine.Engine
	// Defaults seeds every request's evaluation configuration; query
	// parameters override individual fields per request.
	Defaults engine.Config
	// MaxConcurrent caps simultaneous verdict-producing requests (test,
	// evaluate, stream). 0 means unlimited. Requests beyond the cap queue
	// until a slot frees or their context ends.
	MaxConcurrent int
	// MaxBodyBytes bounds request bodies; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Catalog seeds the registry at construction (sources compile lazily).
	Catalog []Model
	// Jobs manages the asynchronous jobs behind /v1/explore, /v1/sweep
	// and /v1/jobs. nil creates a manager with jobs.Options defaults; pass
	// one explicitly to tune concurrency/retention and to Close it on
	// shutdown (counterpointd does).
	Jobs *jobs.Manager
	// JobStore is the durable journal behind Jobs (counterpointd's
	// -job-db). When set, /healthz and /stats surface its health, and new
	// durable submissions are shed with 503 + Retry-After while the store
	// is degraded — the daemon itself keeps serving reads and running
	// jobs from memory. nil means jobs are memory-only.
	JobStore *jobstore.Store
	// MaxSweepCells caps the expanded grid size a POST /v1/sweep request
	// may submit; 0 means DefaultMaxSweepCells.
	MaxSweepCells int
	// MaxStreams caps concurrently open online-refutation streams; 0
	// means DefaultMaxStreams. Creation beyond the cap is a 429.
	MaxStreams int
	// StreamBuffer is the per-stream ingest queue capacity — the
	// high-water mark at which the backpressure policy engages; 0 means
	// DefaultStreamBuffer. Streams may request smaller buffers, never
	// larger.
	StreamBuffer int
	// StreamIdleTTL reaps streams with no ingest activity: live idle
	// streams are closed (reason "idle"), closed ones removed. 0 means
	// DefaultStreamIdleTTL.
	StreamIdleTTL time.Duration

	// streamNow, when set (by tests), replaces time.Now for stream
	// idle-TTL accounting so reaps are deterministic.
	streamNow func() time.Time
}

// Server is the HTTP feasibility service. Create with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	eng       *engine.Engine
	reg       *Registry
	defaults  engine.Config
	sem       chan struct{}
	bodyLimit int64
	mux       *http.ServeMux
	jobs      *jobs.Manager
	store     *jobstore.Store
	streams   *streamManager

	maxSweepCells int
}

// New builds a Server from opts.
func New(opts Options) *Server {
	s := &Server{
		eng:       opts.Engine,
		reg:       NewRegistry(),
		defaults:  opts.Defaults,
		bodyLimit: opts.MaxBodyBytes,
		mux:       http.NewServeMux(),
		jobs:      opts.Jobs,
		store:     opts.JobStore,

		maxSweepCells: opts.MaxSweepCells,
	}
	if s.maxSweepCells <= 0 {
		s.maxSweepCells = DefaultMaxSweepCells
	}
	if s.eng == nil {
		s.eng = engine.Default()
	}
	if s.jobs == nil {
		s.jobs = jobs.NewManager(jobs.Options{})
	}
	if s.bodyLimit <= 0 {
		s.bodyLimit = DefaultMaxBodyBytes
	}
	if opts.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, opts.MaxConcurrent)
	}
	s.streams = newStreamManager(s.eng, opts.MaxStreams, opts.StreamBuffer, opts.StreamIdleTTL, opts.streamNow)
	for _, m := range opts.Catalog {
		s.reg.Seed(m.Name, m.Source)
	}
	s.mux.HandleFunc("GET /v1/models", s.handleList)
	s.mux.HandleFunc("POST /v1/models", s.handleRegister)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleDescribe)
	s.mux.HandleFunc("POST /v1/models/{name}/test", s.handleTest)
	s.mux.HandleFunc("POST /v1/models/{name}/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/models/{name}/evaluate/stream", s.handleEvaluateStream)
	s.mux.HandleFunc("POST /v1/explore", s.handleExploreSubmit)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobsList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleJobResume)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	s.mux.HandleFunc("GET /v1/streams", s.handleStreamList)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamDescribe)
	s.mux.HandleFunc("POST /v1/streams/{id}/ingest", s.handleStreamIngest)
	s.mux.HandleFunc("GET /v1/streams/{id}/events", s.handleStreamEvents)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Registry exposes the server's model registry.
func (s *Server) Registry() *Registry { return s.reg }

// Jobs exposes the server's exploration job manager.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Close shuts down the server's stream tier: every open stream is closed
// (reason "shutdown"), queued observations are drained, and Close blocks
// until the last stream worker exits. The jobs manager and engine are
// not owned by the Server and are closed by the caller (counterpointd
// does, after Close). Idempotent.
func (s *Server) Close() {
	s.streams.close()
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.bodyLimit)
	s.mux.ServeHTTP(w, r)
}

// acquire claims an evaluation slot, waiting until one frees or ctx ends.
func (s *Server) acquire(ctx context.Context) error {
	if s.sem == nil {
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorJSON{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// durableOK gates endpoints that would journal new work (submit,
// resume). While the durable store is degraded the daemon keeps serving
// reads and running jobs from memory, but accepting a submission it
// cannot journal would silently break the crash-safety contract — so it
// sheds the request with 503 and a Retry-After matching the store's next
// reopen probe.
func (s *Server) durableOK(w http.ResponseWriter) bool {
	if s.store == nil || !s.store.Degraded() {
		return true
	}
	h := s.store.Health()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(h.RetryInMS)))
	writeError(w, http.StatusServiceUnavailable, "durable job store degraded: %s", h.LastError)
	return false
}

// writeJournalError maps a jobs.ErrJournal submission failure — the
// journal write that would have made the job durable failed — to the
// same 503 + Retry-After contract as durableOK.
func (s *Server) writeJournalError(w http.ResponseWriter, err error) {
	retry := 1
	if s.store != nil {
		retry = retryAfterSeconds(s.store.Health().RetryInMS)
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusServiceUnavailable, "%v", err)
}

// retryAfterSeconds rounds a probe countdown up to whole seconds, with a
// floor of 1 so clients never busy-loop on Retry-After: 0.
func retryAfterSeconds(ms int64) int {
	if ms <= 0 {
		return 1
	}
	return int((ms + 999) / 1000)
}

// lookup resolves the {name} path value to a compiled model, writing the
// appropriate error response when it cannot.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*core.Model, bool) {
	name := r.PathValue("name")
	e, err := s.reg.Get(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	m, err := e.Model()
	if err != nil {
		// A seeded source that fails to compile is a server-side defect,
		// not a client error.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return m, true
}

// requestConfig layers query-parameter overrides over the server defaults.
func (s *Server) requestConfig(r *http.Request) (engine.Config, error) {
	cfg := s.defaults
	q := r.URL.Query()
	if v := q.Get("confidence"); v != "" {
		c, err := strconv.ParseFloat(v, 64)
		// The negated range form also rejects NaN at the API boundary.
		if err != nil || !(c > 0 && c < 1) {
			return cfg, fmt.Errorf("confidence must be a number in (0,1), got %q", v)
		}
		cfg.Confidence = c
	}
	switch v := q.Get("mode"); v {
	case "":
	case "correlated":
		cfg.Mode = stats.Correlated
	case "independent":
		cfg.Mode = stats.Independent
	default:
		return cfg, fmt.Errorf("mode must be correlated or independent, got %q", v)
	}
	for _, b := range []struct {
		key string
		dst *bool
	}{
		{"identify", &cfg.IdentifyViolations},
		{"first", &cfg.StopOnInfeasible},
		{"exact", &cfg.ForceExact},
	} {
		if v := q.Get(b.key); v != "" {
			on, err := strconv.ParseBool(v)
			if err != nil {
				return cfg, fmt.Errorf("%s must be a boolean, got %q", b.key, v)
			}
			*b.dst = on
		}
	}
	if v := q.Get("batch"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return cfg, fmt.Errorf("batch must be a positive integer, got %q", v)
		}
		cfg.BatchSize = n
	}
	// Request payloads are decoded fresh per request and never recur, so
	// the engine must not retain them in its pointer-keyed caches. This is
	// service policy, not client-tunable.
	cfg.EphemeralObservations = true
	return cfg, nil
}

// missingCounters lists the model counters an observation did not record.
// Testing such an observation would silently substitute constant 0 for
// the unrecorded events — a confidently wrong verdict — so the handlers
// reject it instead (the counterpoint CLI guards the same way, by
// intersecting counter sets up front).
func missingCounters(m *core.Model, o *counters.Observation) []string {
	var missing []string
	for _, e := range m.Set.Events() {
		if !o.Set.Contains(e) {
			missing = append(missing, string(e))
		}
	}
	return missing
}

// checkCovers validates every observation against the session's model,
// writing a 400 naming the unrecorded counters on failure.
func checkCovers(w http.ResponseWriter, sess *engine.Session, corpus ...*counters.Observation) bool {
	for _, o := range corpus {
		if missing := missingCounters(sess.Model(), o); len(missing) > 0 {
			writeError(w, http.StatusBadRequest,
				"observation %q does not record model counters %v (see GET /v1/models/%s for the full set)",
				o.Label, missing, sess.Model().Name)
			return false
		}
	}
	return true
}

// session resolves model and per-request configuration to the shared
// engine session for the pair.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*engine.Session, bool) {
	m, ok := s.lookup(w, r)
	if !ok {
		return nil, false
	}
	cfg, err := s.requestConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	sess, err := s.eng.SessionFor(m, cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return sess, true
}

// --- GET /healthz ---

type healthJSON struct {
	Status  string `json:"status"`
	Models  int    `json:"models"`
	Workers int    `json:"workers"`
	Regions int    `json:"cached_regions"`
	Jobs    int    `json:"jobs"`
	Streams int    `json:"streams"`
	// Durable reports whether a job journal is attached; Degraded carries
	// the store's failure detail (last error, probe countdown, drop
	// count) while it is shedding durable work — and flips Status to
	// "degraded", since acked submissions are temporarily not crash-safe.
	Durable  bool             `json:"durable"`
	Degraded *jobstore.Health `json:"degraded,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthJSON{
		Status:  "ok",
		Models:  s.reg.Len(),
		Workers: s.eng.Workers(),
		Regions: s.eng.Regions().Len(),
		Jobs:    s.jobs.Len(),
		Streams: s.streams.stats().Active,
		Durable: s.store != nil,
	}
	if s.store != nil {
		if sh := s.store.Health(); sh.State != "ok" {
			h.Status = "degraded"
			h.Degraded = &sh
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// --- GET /stats ---

// statsJSON surfaces the engine's two-tier solver telemetry: how many
// feasibility LPs were decided, how many the float64 filter settled with a
// verified certificate, how many fell back to the exact rational simplex
// (the fallback rate is the service's honesty metric — it is reported,
// never hidden), how many re-entered a warm-started dual-simplex basis,
// and how the engine's content-addressed caches performed.
type statsJSON struct {
	core.SolverCounts
	FilterHits     uint64             `json:"filter_hits"`
	MeanWarmPivots float64            `json:"mean_warm_pivots"`
	Caches         engine.CacheCounts `json:"caches"`
	// Sweep reports batched-sweep dedup: cells/classes planned, engine
	// evaluations actually performed, and the evaluations-avoided ratio.
	Sweep jobs.SweepCounts `json:"sweep"`
	// Streams reports the online-refutation tier: stream lifecycle
	// counts, ingest/verdict/drop totals, the deepest queue observed and
	// aggregate ingest→verdict latency.
	Streams StreamCounts `json:"streams"`
	// Jobstore reports the durable journal (append/fsync/retry totals,
	// compactions, degradations, torn-tail repairs) when one is attached.
	Jobstore *jobstore.Counts `json:"jobstore,omitempty"`
	Models   int              `json:"models"`
	Workers  int              `json:"workers"`
	Regions  int              `json:"cached_regions"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	counts := s.eng.SolverStats()
	out := statsJSON{
		SolverCounts:   counts,
		FilterHits:     counts.FilterHits(),
		MeanWarmPivots: counts.MeanWarmPivots(),
		Caches:         s.eng.CacheStats(),
		Sweep:          s.jobs.SweepStats(),
		Streams:        s.streams.stats(),
		Models:         s.reg.Len(),
		Workers:        s.eng.Workers(),
		Regions:        s.eng.Regions().Len(),
	}
	if s.store != nil {
		sc := s.store.Stats()
		out.Jobstore = &sc
	}
	writeJSON(w, http.StatusOK, out)
}

// --- GET /v1/models ---

type listJSON struct {
	Models []string `json:"models"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, listJSON{Models: s.reg.Names()})
}

// --- POST /v1/models ---

type registerJSON struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

type modelSummaryJSON struct {
	Name     string   `json:"name"`
	Counters []string `json:"counters"`
	NumPaths int      `json:"num_paths"`
	NumCone  int      `json:"num_generators"`
}

func summarise(m *core.Model) modelSummaryJSON {
	evs := m.Set.Events()
	names := make([]string, len(evs))
	for i, e := range evs {
		names[i] = string(e)
	}
	return modelSummaryJSON{
		Name:     m.Name,
		Counters: names,
		NumPaths: m.NumPaths(),
		NumCone:  len(m.Cone().Generators),
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	e, err := s.reg.Register(req.Name, req.Source)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrModelExists) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	m, _ := e.Model()
	writeJSON(w, http.StatusCreated, summarise(m))
}

// --- GET /v1/models/{name} ---

type describeJSON struct {
	modelSummaryJSON
	Constraints []string   `json:"constraints"`
	Signatures  [][]string `json:"signatures"`
}

func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	m, ok := s.lookup(w, r)
	if !ok {
		return
	}
	h, err := m.Constraints()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "deduce constraints: %v", err)
		return
	}
	cons := h.All()
	out := describeJSON{
		modelSummaryJSON: summarise(m),
		Constraints:      make([]string, len(cons)),
		Signatures:       [][]string{},
	}
	for i, k := range cons {
		out.Constraints[i] = k.String()
	}
	sigs, err := m.Diagram.Signatures(m.Set)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "enumerate signatures: %v", err)
		return
	}
	for _, sig := range sigs {
		row := make([]string, len(sig))
		for j, c := range sig {
			row[j] = c.RatString()
		}
		out.Signatures = append(out.Signatures, row)
	}
	writeJSON(w, http.StatusOK, out)
}

// --- verdict encoding shared by test/evaluate/stream ---

type verdictJSON struct {
	Observation string   `json:"observation"`
	Feasible    bool     `json:"feasible"`
	Violations  []string `json:"violations,omitempty"`
}

func verdictToJSON(v *core.Verdict) verdictJSON {
	out := verdictJSON{Observation: v.Observation, Feasible: v.Feasible}
	for _, k := range v.Violations {
		out.Violations = append(out.Violations, k.String())
	}
	return out
}

// --- POST /v1/models/{name}/test ---

func (s *Server) handleTest(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var o counters.Observation
	if err := json.NewDecoder(r.Body).Decode(&o); err != nil {
		writeError(w, http.StatusBadRequest, "decode observation: %v", err)
		return
	}
	if o.Len() == 0 {
		writeError(w, http.StatusBadRequest, "observation %q has no samples", o.Label)
		return
	}
	if !checkCovers(w, sess, &o) {
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer s.release()
	v, err := sess.Test(r.Context(), &o)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, verdictToJSON(v))
}

// --- corpus decoding shared by evaluate and stream ---

type corpusJSON struct {
	Observations []*counters.Observation `json:"observations"`
}

// readCorpus decodes the request corpus: a JSON body {"observations":
// [...]} or a multipart/form-data upload whose file parts are observation
// CSVs (labelled by filename). Errors are client errors.
func readCorpus(r *http.Request) ([]*counters.Observation, error) {
	ct := r.Header.Get("Content-Type")
	mt, params, err := mime.ParseMediaType(ct)
	if err != nil && ct != "" {
		return nil, fmt.Errorf("parse content type: %w", err)
	}
	if mt == "multipart/form-data" {
		return readCorpusMultipart(multipart.NewReader(r.Body, params["boundary"]))
	}
	var c corpusJSON
	if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
		return nil, fmt.Errorf("decode corpus: %w", err)
	}
	if len(c.Observations) == 0 {
		return nil, fmt.Errorf("corpus has no observations")
	}
	for i, o := range c.Observations {
		// A JSON null element decodes to a nil pointer without ever
		// reaching Observation.UnmarshalJSON's validation.
		if o == nil {
			return nil, fmt.Errorf("observation %d is null", i)
		}
		if o.Len() == 0 {
			return nil, fmt.Errorf("observation %q has no samples", o.Label)
		}
	}
	return c.Observations, nil
}

func readCorpusMultipart(mr *multipart.Reader) ([]*counters.Observation, error) {
	var corpus []*counters.Observation
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read multipart corpus: %w", err)
		}
		label := part.FileName()
		if label == "" {
			label = part.FormName()
		}
		o, err := counters.ReadCSV(part, label)
		part.Close()
		if err != nil {
			return nil, err
		}
		if o.Len() == 0 {
			return nil, fmt.Errorf("observation %q has no samples", label)
		}
		corpus = append(corpus, o)
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("corpus has no observations")
	}
	return corpus, nil
}

// corpusChannel feeds a decoded corpus to EvaluateStream.
func corpusChannel(corpus []*counters.Observation) <-chan *counters.Observation {
	in := make(chan *counters.Observation, len(corpus))
	for _, o := range corpus {
		in <- o
	}
	close(in)
	return in
}

// --- POST /v1/models/{name}/evaluate ---

type corpusResultJSON struct {
	Model               string         `json:"model"`
	Total               int            `json:"total"`
	Infeasible          int            `json:"infeasible"`
	Feasible            bool           `json:"feasible"`
	ViolatedConstraints map[string]int `json:"violated_constraints,omitempty"`
	Verdicts            []verdictJSON  `json:"verdicts"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	corpus, err := readCorpus(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !checkCovers(w, sess, corpus...) {
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer s.release()
	res, err := sess.Evaluate(r.Context(), corpus)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	out := corpusResultJSON{
		Model:               res.Model,
		Total:               res.Total,
		Infeasible:          res.Infeasible,
		Feasible:            res.Feasible(),
		ViolatedConstraints: res.ViolatedConstraints,
		Verdicts:            make([]verdictJSON, len(res.Verdicts)),
	}
	for i, v := range res.Verdicts {
		out.Verdicts[i] = verdictToJSON(v)
	}
	writeJSON(w, http.StatusOK, out)
}

// --- POST /v1/models/{name}/evaluate/stream ---

// streamItemJSON is one NDJSON line: a verdict (with its position in the
// uploaded corpus), an evaluation error, or the trailing aggregate.
type streamItemJSON struct {
	Index       *int     `json:"index,omitempty"`
	Observation string   `json:"observation,omitempty"`
	Feasible    *bool    `json:"feasible,omitempty"`
	Violations  []string `json:"violations,omitempty"`
	Error       string   `json:"error,omitempty"`

	Done       bool `json:"done,omitempty"`
	Total      int  `json:"total,omitempty"`
	Infeasible int  `json:"infeasible,omitempty"`
}

func (s *Server) handleEvaluateStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	corpus, err := readCorpus(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !checkCovers(w, sess, corpus...) {
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer s.release()

	// The stream's context is the request context: a client disconnect
	// cancels the engine stream, whose goroutines then exit (the leak
	// regression tests in internal/engine pin this down). A failed write
	// cancels explicitly for the same effect.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	st := sess.EvaluateStream(ctx, corpusChannel(corpus))
	for item := range st.C {
		line := streamItemJSON{}
		idx := item.Index
		line.Index = &idx
		if item.Err != nil {
			line.Error = item.Err.Error()
		} else {
			line.Observation = item.Verdict.Observation
			f := item.Verdict.Feasible
			line.Feasible = &f
			for _, k := range item.Verdict.Violations {
				line.Violations = append(line.Violations, k.String())
			}
		}
		if err := enc.Encode(line); err != nil {
			cancel()
			break
		}
		rc.Flush()
	}
	res, err := st.Result()
	final := streamItemJSON{Done: true, Total: res.Total, Infeasible: res.Infeasible}
	if err != nil {
		final.Error = err.Error()
	}
	if encErr := enc.Encode(final); encErr == nil {
		rc.Flush()
	}
}
