package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/haswell"
	"repro/internal/jobs"
	"repro/internal/sweep"
)

// sweepResultJSON mirrors jobs.SweepResult as it travels over the wire.
type sweepResultJSON struct {
	GridSize         int `json:"grid_size"`
	BaseObservations int `json:"base_observations"`
	UniqueBehaviours int `json:"unique_behaviours"`
	Consistent       int `json:"consistent"`
	Refuted          int `json:"refuted"`
	Verdicts         int `json:"verdicts"`
	Cells            []struct {
		Index      int    `json:"index"`
		Code       string `json:"code"`
		Event      uint8  `json:"event"`
		Umask      uint8  `json:"umask"`
		Cmask      uint8  `json:"cmask"`
		Sig        string `json:"sig"`
		Feasible   int    `json:"feasible"`
		Infeasible int    `json:"infeasible"`
		Consistent bool   `json:"consistent"`
	} `json:"cells"`
}

func sweepResultOf(t *testing.T, st jobs.Status) sweepResultJSON {
	t.Helper()
	raw, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res sweepResultJSON
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// sweepBody keeps the simulated base corpus test-sized; the grid (the
// default, 384 cells) is what carries the scale.
func sweepBody() map[string]any {
	return map[string]any{"seed": 1, "samples": 8, "uops_per_sample": 1500}
}

// TestSweepEndToEnd is the acceptance-criteria test: a default-grid sweep
// (>=10x the haswell-mmu catalogue) submitted through POST /v1/sweep is
// cancelled mid-grid from its event stream, resumed through the generic
// resume endpoint, and its finished cell list is bit-identical to an
// uninterrupted run of the same spec — while GET /stats shows the LP and
// verdict cache hits the grid's aliasing must produce.
func TestSweepEndToEnd(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})

	resp := postJSON(t, ts.URL+"/v1/sweep", sweepBody())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub struct {
		jobs.Status
		GridSize int `json:"grid_size"`
	}
	decodeBody(t, resp, &sub)
	wantGrid := sweep.DefaultGrid().Size()
	if sub.ID == "" || sub.Kind != "sweep" || sub.GridSize != wantGrid {
		t.Fatalf("submission: %+v", sub)
	}
	if cat := len(haswell.Catalog()); sub.GridSize < 10*cat {
		t.Fatalf("grid %d cells is not >=10x the %d-model catalogue", sub.GridSize, cat)
	}

	// Follow the event stream and cancel after the fifth committed cell —
	// mid-grid by construction.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "cell" {
			cells++
			if cells == 5 {
				dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
				dresp, err := http.DefaultClient.Do(dreq)
				if err != nil {
					t.Fatal(err)
				}
				dresp.Body.Close()
			}
		}
	}
	sresp.Body.Close()
	st := awaitJob(t, ts.URL, sub.ID)
	if st.State != jobs.StateCancelled {
		t.Fatalf("after mid-grid DELETE: %s (%s)", st.State, st.Error)
	}
	if cells >= wantGrid {
		t.Fatalf("cancellation landed after the grid finished (%d cells)", cells)
	}

	// Resume through the kind-dispatching endpoint.
	rresp, err := http.Post(ts.URL+"/v1/jobs/"+sub.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume status %d", rresp.StatusCode)
	}
	var rsub jobs.Status
	decodeBody(t, rresp, &rsub)
	if rsub.ResumedFrom != sub.ID {
		t.Fatalf("resumed from %q, want %q", rsub.ResumedFrom, sub.ID)
	}
	rst := awaitJob(t, ts.URL, rsub.ID)
	if rst.State != jobs.StateDone {
		t.Fatalf("resumed job: %s (%s)", rst.State, rst.Error)
	}
	resumed := sweepResultOf(t, rst)

	// The resumed job announced its restored prefix.
	eresp, err := http.Get(ts.URL + "/v1/jobs/" + rsub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	restored := false
	esc := bufio.NewScanner(eresp.Body)
	esc.Buffer(make([]byte, 1<<20), 1<<20)
	for esc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(esc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "restored" {
			restored = true
		}
	}
	eresp.Body.Close()
	if !restored {
		t.Fatal("resumed job emitted no restored event")
	}

	// An uninterrupted run of the same spec must agree cell for cell.
	var refSub jobs.Status
	decodeBody(t, postJSON(t, ts.URL+"/v1/sweep", sweepBody()), &refSub)
	refSt := awaitJob(t, ts.URL, refSub.ID)
	if refSt.State != jobs.StateDone {
		t.Fatalf("reference job: %s (%s)", refSt.State, refSt.Error)
	}
	ref := sweepResultOf(t, refSt)
	if !reflect.DeepEqual(resumed.Cells, ref.Cells) {
		t.Fatalf("resumed cells are not bit-identical to the uninterrupted run")
	}
	if resumed.Consistent != ref.Consistent || resumed.Refuted != ref.Refuted {
		t.Fatalf("summaries diverge: %+v vs %+v", resumed, ref)
	}

	// The scan discriminates: most encodings are refuted, the
	// architectural page_walker_loads encoding survives.
	if ref.GridSize != wantGrid || len(ref.Cells) != wantGrid || ref.Verdicts != wantGrid*ref.BaseObservations {
		t.Fatalf("result accounting: %+v", ref)
	}
	if ref.Refuted == 0 || ref.Consistent == 0 {
		t.Fatalf("degenerate verdict split: %+v", ref)
	}
	if ref.UniqueBehaviours >= wantGrid {
		t.Fatalf("no aliasing across the grid: %d behaviours", ref.UniqueBehaviours)
	}
	arch := fmt.Sprintf("%#x", uint32(0x0F)<<8|uint32(sweep.EventPageWalkerLoads))
	found := false
	for _, c := range ref.Cells {
		if c.Code == arch {
			found = true
			if !c.Consistent {
				t.Fatalf("architectural encoding refuted: %+v", c)
			}
		}
	}
	if !found {
		t.Fatalf("architectural cell %s missing from results", arch)
	}

	// Dedup observable, not assumed: the grid's aliased cells landed in
	// the shared engine's content-addressed caches.
	var stats struct {
		Caches struct {
			LPHits       uint64 `json:"lp_hits"`
			VerdictHits  uint64 `json:"verdict_hits"`
			LPMisses     uint64 `json:"lp_misses"`
			VerdictMiss  uint64 `json:"verdict_misses"`
			LPEntries    int    `json:"lp_entries"`
			VerdictEntry int    `json:"verdict_entries"`
		} `json:"caches"`
	}
	gresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, gresp, &stats)
	if stats.Caches.LPHits == 0 || stats.Caches.VerdictHits == 0 {
		t.Fatalf("no cache hits across grid cells: %+v", stats.Caches)
	}
	if stats.Caches.LPHits < stats.Caches.LPMisses {
		t.Fatalf("grid dedup should dominate misses: %+v", stats.Caches)
	}
}

func TestSweepSubmitValidation(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})
	cases := []struct {
		name   string
		body   map[string]any
		query  string
		status int
		substr string
	}{
		{"partial axes", map[string]any{"events": []int{1}}, "", http.StatusBadRequest, "all three axes"},
		{"axis range", map[string]any{"events": []int{1}, "umasks": []int{300}, "cmasks": []int{0}}, "", http.StatusBadRequest, "out of range"},
		{"negative axis", map[string]any{"events": []int{-1}, "umasks": []int{1}, "cmasks": []int{0}}, "", http.StatusBadRequest, "out of range"},
		{"negative samples", map[string]any{"samples": -1}, "", http.StatusBadRequest, "non-negative"},
		{"bad confidence", map[string]any{}, "?confidence=2", http.StatusBadRequest, "confidence"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/sweep"+tc.query, tc.body)
			wantError(t, resp, tc.status, tc.substr)
		})
	}
}

func TestSweepGridCap(t *testing.T) {
	jm := jobs.NewManager(jobs.Options{})
	t.Cleanup(jm.Close)
	ts := newTestServer(t, func(o *Options) {
		o.Jobs = jm
		o.MaxSweepCells = 10
	})
	resp := postJSON(t, ts.URL+"/v1/sweep", map[string]any{})
	wantError(t, resp, http.StatusBadRequest, "cap is 10")
	// An in-cap custom grid is accepted.
	ok := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"events": []int{0xBC}, "umasks": []int{0x0F}, "cmasks": []int{0},
		"samples": 2, "uops_per_sample": 200,
	})
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("custom grid status %d", ok.StatusCode)
	}
	var sub jobs.Status
	decodeBody(t, ok, &sub)
	st := awaitJob(t, ts.URL, sub.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("tiny sweep: %s (%s)", st.State, st.Error)
	}
}
