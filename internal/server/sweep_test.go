package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/haswell"
	"repro/internal/jobs"
	"repro/internal/sweep"
)

// sweepResultJSON mirrors jobs.SweepResult as it travels over the wire.
type sweepResultJSON struct {
	GridSize         int `json:"grid_size"`
	BaseObservations int `json:"base_observations"`
	UniqueBehaviours int `json:"unique_behaviours"`
	ClassesPlanned   int `json:"classes_planned"`
	ClassesEvaluated int `json:"classes_evaluated"`
	CellsAliased     int `json:"cells_aliased"`
	Consistent       int `json:"consistent"`
	Refuted          int `json:"refuted"`
	Verdicts         int `json:"verdicts"`
	Cells            []struct {
		Index      int    `json:"index"`
		Code       string `json:"code"`
		Event      uint8  `json:"event"`
		Umask      uint8  `json:"umask"`
		Cmask      uint8  `json:"cmask"`
		Sig        string `json:"sig"`
		Class      int    `json:"class"`
		Feasible   int    `json:"feasible"`
		Infeasible int    `json:"infeasible"`
		Consistent bool   `json:"consistent"`
	} `json:"cells"`
}

func sweepResultOf(t *testing.T, st jobs.Status) sweepResultJSON {
	t.Helper()
	raw, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res sweepResultJSON
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// sweepBody keeps the simulated base corpus test-sized; the grid (the
// default, 384 cells) is what carries the scale.
func sweepBody() map[string]any {
	return map[string]any{"seed": 1, "samples": 8, "uops_per_sample": 1500}
}

// TestSweepEndToEnd is the acceptance-criteria test: a default-grid sweep
// (>=10x the haswell-mmu catalogue) submitted through POST /v1/sweep is
// cancelled mid-grid from its event stream, resumed through the generic
// resume endpoint, and its finished cell list is bit-identical to an
// uninterrupted run of the same spec — while GET /stats shows the LP and
// verdict cache hits the grid's aliasing must produce.
func TestSweepEndToEnd(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})

	resp := postJSON(t, ts.URL+"/v1/sweep", sweepBody())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub struct {
		jobs.Status
		GridSize int `json:"grid_size"`
	}
	decodeBody(t, resp, &sub)
	wantGrid := sweep.DefaultGrid().Size()
	if sub.ID == "" || sub.Kind != "sweep" || sub.GridSize != wantGrid {
		t.Fatalf("submission: %+v", sub)
	}
	if cat := len(haswell.Catalog()); sub.GridSize < 10*cat {
		t.Fatalf("grid %d cells is not >=10x the %d-model catalogue", sub.GridSize, cat)
	}

	// Follow the event stream and cancel after the fifth committed cell —
	// mid-grid by construction.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "cell" {
			cells++
			if cells == 5 {
				dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
				dresp, err := http.DefaultClient.Do(dreq)
				if err != nil {
					t.Fatal(err)
				}
				dresp.Body.Close()
			}
		}
	}
	sresp.Body.Close()
	st := awaitJob(t, ts.URL, sub.ID)
	if st.State != jobs.StateCancelled {
		t.Fatalf("after mid-grid DELETE: %s (%s)", st.State, st.Error)
	}
	if cells >= wantGrid {
		t.Fatalf("cancellation landed after the grid finished (%d cells)", cells)
	}

	// Resume through the kind-dispatching endpoint.
	rresp, err := http.Post(ts.URL+"/v1/jobs/"+sub.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume status %d", rresp.StatusCode)
	}
	var rsub jobs.Status
	decodeBody(t, rresp, &rsub)
	if rsub.ResumedFrom != sub.ID {
		t.Fatalf("resumed from %q, want %q", rsub.ResumedFrom, sub.ID)
	}
	rst := awaitJob(t, ts.URL, rsub.ID)
	if rst.State != jobs.StateDone {
		t.Fatalf("resumed job: %s (%s)", rst.State, rst.Error)
	}
	resumed := sweepResultOf(t, rst)

	// The resumed job announced its restored prefix.
	eresp, err := http.Get(ts.URL + "/v1/jobs/" + rsub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	restored := false
	esc := bufio.NewScanner(eresp.Body)
	esc.Buffer(make([]byte, 1<<20), 1<<20)
	for esc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(esc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "restored" {
			restored = true
		}
	}
	eresp.Body.Close()
	if !restored {
		t.Fatal("resumed job emitted no restored event")
	}

	// An uninterrupted run of the same spec must agree cell for cell.
	var refSub jobs.Status
	decodeBody(t, postJSON(t, ts.URL+"/v1/sweep", sweepBody()), &refSub)
	refSt := awaitJob(t, ts.URL, refSub.ID)
	if refSt.State != jobs.StateDone {
		t.Fatalf("reference job: %s (%s)", refSt.State, refSt.Error)
	}
	ref := sweepResultOf(t, refSt)
	if !reflect.DeepEqual(resumed.Cells, ref.Cells) {
		t.Fatalf("resumed cells are not bit-identical to the uninterrupted run")
	}
	if resumed.Consistent != ref.Consistent || resumed.Refuted != ref.Refuted {
		t.Fatalf("summaries diverge: %+v vs %+v", resumed, ref)
	}

	// The scan discriminates: most encodings are refuted, the
	// architectural page_walker_loads encoding survives.
	if ref.GridSize != wantGrid || len(ref.Cells) != wantGrid || ref.Verdicts != wantGrid*ref.BaseObservations {
		t.Fatalf("result accounting: %+v", ref)
	}
	if ref.Refuted == 0 || ref.Consistent == 0 {
		t.Fatalf("degenerate verdict split: %+v", ref)
	}
	if ref.UniqueBehaviours >= wantGrid {
		t.Fatalf("no aliasing across the grid: %d behaviours", ref.UniqueBehaviours)
	}
	arch := fmt.Sprintf("%#x", uint32(0x0F)<<8|uint32(sweep.EventPageWalkerLoads))
	found := false
	for _, c := range ref.Cells {
		if c.Code == arch {
			found = true
			if !c.Consistent {
				t.Fatalf("architectural encoding refuted: %+v", c)
			}
		}
	}
	if !found {
		t.Fatalf("architectural cell %s missing from results", arch)
	}

	// The acceptance bar: one engine evaluation per behaviour class. The
	// 384-cell default grid must complete in at most 130 class
	// evaluations (~118 distinct behaviours), a ≥3× reduction.
	if ref.ClassesPlanned != ref.UniqueBehaviours || ref.ClassesPlanned+ref.CellsAliased != wantGrid {
		t.Fatalf("plan accounting: %+v", ref)
	}
	if ref.ClassesEvaluated > 130 {
		t.Fatalf("%d engine evaluations for the %d-cell default grid, want <= 130", ref.ClassesEvaluated, wantGrid)
	}
	if ref.ClassesEvaluated*3 > wantGrid {
		t.Fatalf("dedup below 3x: %d evaluations for %d cells", ref.ClassesEvaluated, wantGrid)
	}

	// Dedup observable, not assumed: GET /stats reports the planner's
	// evaluations-avoided ratio, and the cross-run re-evaluations land in
	// the shared engine's content-addressed verdict cache (the uncancelled
	// reference run re-presents LP content the first two runs solved).
	var stats struct {
		Caches struct {
			VerdictHits uint64 `json:"verdict_hits"`
		} `json:"caches"`
		Sweep jobs.SweepCounts `json:"sweep"`
	}
	gresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, gresp, &stats)
	if stats.Sweep.Jobs != 3 || stats.Sweep.CellsPlanned == 0 || stats.Sweep.ClassesPlanned == 0 {
		t.Fatalf("sweep telemetry: %+v", stats.Sweep)
	}
	if stats.Sweep.EvaluationsAvoided <= 0.5 {
		t.Fatalf("evaluations-avoided ratio %g, want > 0.5 across the aliased grid", stats.Sweep.EvaluationsAvoided)
	}
	if stats.Caches.VerdictHits == 0 {
		t.Fatalf("no cross-run verdict-cache hits: %+v", stats)
	}
}

func TestSweepSubmitValidation(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})
	cases := []struct {
		name   string
		body   map[string]any
		query  string
		status int
		substr string
	}{
		{"partial axes", map[string]any{"events": []int{1}}, "", http.StatusBadRequest, "all three axes"},
		{"axis range", map[string]any{"events": []int{1}, "umasks": []int{300}, "cmasks": []int{0}}, "", http.StatusBadRequest, "out of range"},
		{"negative axis", map[string]any{"events": []int{-1}, "umasks": []int{1}, "cmasks": []int{0}}, "", http.StatusBadRequest, "out of range"},
		{"negative samples", map[string]any{"samples": -1}, "", http.StatusBadRequest, "non-negative"},
		{"negative workers", map[string]any{"workers": -1}, "", http.StatusBadRequest, "non-negative"},
		{"bad confidence", map[string]any{}, "?confidence=2", http.StatusBadRequest, "confidence"},
		{"unknown preset", map[string]any{"grid": "huge"}, "", http.StatusBadRequest, "grid preset"},
		{"preset with axes", map[string]any{"grid": "large", "events": []int{1}, "umasks": []int{1}, "cmasks": []int{0}}, "", http.StatusBadRequest, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/sweep"+tc.query, tc.body)
			wantError(t, resp, tc.status, tc.substr)
		})
	}
}

// TestSweepLargeGridHTTPResume is the HTTP half of the 4096-cell
// acceptance smoke: a 4096-cell custom grid — aliasing tuned so its
// distinct LP content stays test-sized (umask low nibbles span {0x0,
// 0x1, 0x3, 0xF}; every non-zero cmask's threshold out-gates the tiny
// simulated corpus) — is cancelled mid-scan over the wire and resumed
// through POST /v1/jobs/{id}/resume, finishing bit-identical to an
// uninterrupted run.
func TestSweepLargeGridHTTPResume(t *testing.T) {
	ts, _ := newJobsServer(t, jobs.Options{})

	events := []int{0x42, 0x43, 0x44, int(sweep.EventPageWalkerLoads)}
	var umasks, cmasks []int
	for hi := 0; hi < 16; hi++ {
		for _, lo := range []int{0x0, 0x1, 0x3, 0xF} {
			umasks = append(umasks, hi<<4|lo)
		}
		cmasks = append(cmasks, hi<<4|0x0F)
	}
	cmasks[0] = 0 // one ungated cmask; the other 15 threshold everything to zero
	body := map[string]any{
		"events": events, "umasks": umasks, "cmasks": cmasks,
		"seed": 1, "samples": 2, "uops_per_sample": 300,
	}
	wantGrid := len(events) * len(umasks) * len(cmasks)
	if wantGrid < 4096 {
		t.Fatalf("smoke grid has %d cells, need >= 4096", wantGrid)
	}

	var sub struct {
		jobs.Status
		GridSize int `json:"grid_size"`
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &sub)
	if sub.GridSize != wantGrid {
		t.Fatalf("grid size %d, want %d", sub.GridSize, wantGrid)
	}

	// Cancel from the event stream once the scan is mid-grid.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == "cell" {
			cells++
			if cells == 1000 {
				dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
				dresp, err := http.DefaultClient.Do(dreq)
				if err != nil {
					t.Fatal(err)
				}
				dresp.Body.Close()
			}
		}
	}
	sresp.Body.Close()
	if st := awaitJob(t, ts.URL, sub.ID); st.State != jobs.StateCancelled {
		t.Fatalf("after mid-grid DELETE: %s (%s)", st.State, st.Error)
	}
	if cells >= wantGrid {
		t.Fatalf("cancellation landed after the grid finished (%d cells)", cells)
	}

	rresp, err := http.Post(ts.URL+"/v1/jobs/"+sub.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume status %d", rresp.StatusCode)
	}
	var rsub jobs.Status
	decodeBody(t, rresp, &rsub)
	rst := awaitJob(t, ts.URL, rsub.ID)
	if rst.State != jobs.StateDone {
		t.Fatalf("resumed job: %s (%s)", rst.State, rst.Error)
	}
	resumed := sweepResultOf(t, rst)

	var refSub jobs.Status
	decodeBody(t, postJSON(t, ts.URL+"/v1/sweep", body), &refSub)
	refSt := awaitJob(t, ts.URL, refSub.ID)
	if refSt.State != jobs.StateDone {
		t.Fatalf("reference job: %s (%s)", refSt.State, refSt.Error)
	}
	ref := sweepResultOf(t, refSt)
	if !reflect.DeepEqual(resumed.Cells, ref.Cells) {
		t.Fatal("resumed 4096-cell scan is not bit-identical to the uninterrupted run")
	}
	if len(ref.Cells) != wantGrid || ref.ClassesPlanned >= wantGrid/4 {
		t.Fatalf("plan accounting: grid %d, classes %d", len(ref.Cells), ref.ClassesPlanned)
	}
}

func TestSweepGridCap(t *testing.T) {
	jm := jobs.NewManager(jobs.Options{})
	t.Cleanup(jm.Close)
	ts := newTestServer(t, func(o *Options) {
		o.Jobs = jm
		o.MaxSweepCells = 10
	})
	resp := postJSON(t, ts.URL+"/v1/sweep", map[string]any{})
	wantError(t, resp, http.StatusBadRequest, "cap is 10")
	// The large preset expands before the cap check like any grid.
	resp = postJSON(t, ts.URL+"/v1/sweep", map[string]any{"grid": "large"})
	wantError(t, resp, http.StatusBadRequest, "cap is 10")
	if size := sweep.LargeGrid().Size(); size < 4096 || size > DefaultMaxSweepCells {
		t.Fatalf("large preset is %d cells, want within [4096, %d]", size, DefaultMaxSweepCells)
	}
	// An in-cap custom grid is accepted.
	ok := postJSON(t, ts.URL+"/v1/sweep", map[string]any{
		"events": []int{0xBC}, "umasks": []int{0x0F}, "cmasks": []int{0},
		"samples": 2, "uops_per_sample": 200,
	})
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("custom grid status %d", ok.StatusCode)
	}
	var sub jobs.Status
	decodeBody(t, ok, &sub)
	st := awaitJob(t, ts.URL, sub.ID)
	if st.State != jobs.StateDone {
		t.Fatalf("tiny sweep: %s (%s)", st.State, st.Error)
	}
}
