package simplex

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

// boxProblem builds 1 ≤ x+y ≤ 3, 0 ≤ x−y ≤ 1 over x,y ≥ 0.
func boxProblem() *Problem {
	p := NewProblem(2)
	p.AddConstraint(exact.VecFromInts(1, 1), LE, big.NewRat(3, 1))
	p.AddConstraint(exact.VecFromInts(1, 1), GE, big.NewRat(1, 1))
	p.AddConstraint(exact.VecFromInts(1, -1), LE, big.NewRat(1, 1))
	p.AddConstraint(exact.VecFromInts(1, -1), GE, big.NewRat(0, 1))
	return p
}

func TestCheckPoint(t *testing.T) {
	p := boxProblem()
	in := exact.Vec{big.NewRat(3, 2), big.NewRat(1, 2)} // x−y=1 boundary, inside box
	if !CheckPoint(p, in) {
		t.Error("interior point rejected")
	}
	out := exact.Vec{big.NewRat(3, 1), big.NewRat(3, 1)} // x+y=6 > 3
	if CheckPoint(p, out) {
		t.Error("exterior point accepted")
	}
	neg := exact.Vec{big.NewRat(-1, 1), big.NewRat(2, 1)} // x < 0
	if CheckPoint(p, neg) {
		t.Error("negative coordinate accepted")
	}
	if CheckPoint(p, exact.Vec{big.NewRat(1, 1)}) {
		t.Error("wrong-length point accepted")
	}
}

func TestCheckPointFreeAndEquality(t *testing.T) {
	p := NewProblem(2)
	p.MarkFree(0)
	p.AddConstraint(exact.VecFromInts(1, 1), EQ, big.NewRat(1, 1))
	ok := exact.Vec{big.NewRat(-1, 1), big.NewRat(2, 1)}
	if !CheckPoint(p, ok) {
		t.Error("free negative coordinate rejected")
	}
	near := exact.Vec{big.NewRat(-1, 1), new(big.Rat).SetFloat64(2.0000001)}
	if CheckPoint(p, near) {
		t.Error("approximate equality accepted — the checker must be exact")
	}
}

func TestCheckFarkas(t *testing.T) {
	// x ≥ 2 and x ≤ 1 is infeasible; certificate q = (1, -1):
	// combination gives 0·x ≥ 1.
	p := NewProblem(1)
	p.AddConstraint(exact.VecFromInts(1), GE, big.NewRat(2, 1))
	p.AddConstraint(exact.VecFromInts(1), LE, big.NewRat(1, 1))
	good := exact.Vec{big.NewRat(1, 1), big.NewRat(-1, 1)}
	if !CheckFarkas(p, good) {
		t.Error("valid Farkas ray rejected")
	}
	// Corruptions must all be rejected.
	wrongSign := exact.Vec{big.NewRat(-1, 1), big.NewRat(-1, 1)}
	if CheckFarkas(p, wrongSign) {
		t.Error("sign-violating ray accepted")
	}
	zero := exact.Vec{new(big.Rat), new(big.Rat)}
	if CheckFarkas(p, zero) {
		t.Error("zero ray accepted")
	}
	unbalanced := exact.Vec{big.NewRat(1, 1), big.NewRat(-2, 1)} // d = -1 ≤ 0 but rhs = 0
	if CheckFarkas(p, unbalanced) {
		t.Error("ray with non-positive combined RHS accepted")
	}
	if CheckFarkas(p, exact.Vec{big.NewRat(1, 1)}) {
		t.Error("wrong-length ray accepted")
	}

	// On a feasible problem no ray may verify.
	feasible := boxProblem()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		ray := make(exact.Vec, len(feasible.Constraints))
		for j := range ray {
			ray[j] = big.NewRat(int64(rng.Intn(11)-5), int64(1+rng.Intn(4)))
		}
		if CheckFarkas(feasible, ray) {
			t.Fatalf("trial %d: Farkas ray %v verified against a feasible problem", i, ray)
		}
	}
}

func TestCheckFarkasFreeVariable(t *testing.T) {
	// With x free, a certificate whose combination leaves a nonzero
	// coefficient on x proves nothing.
	p := NewProblem(2)
	p.MarkFree(0)
	p.AddConstraint(exact.VecFromInts(1, 1), GE, big.NewRat(2, 1))
	p.AddConstraint(exact.VecFromInts(0, 1), LE, big.NewRat(1, 1))
	ray := exact.Vec{big.NewRat(1, 1), big.NewRat(-1, 1)} // d = (1, 0) ≠ 0 on free x
	if CheckFarkas(p, ray) {
		t.Error("ray with nonzero free-variable coefficient accepted")
	}
}

func TestCertifyPointRoundsFloatNoise(t *testing.T) {
	p := boxProblem()
	// A strictly interior point carrying float error well inside the
	// rounding tolerance must certify.
	if !CertifyPoint(p, []float64{1.0 + 1e-14, 0.75 - 1e-14}) {
		t.Error("noisy interior point failed certification")
	}
	// Tiny negative coordinates are solver zeros.
	p2 := NewProblem(2)
	p2.AddConstraint(exact.VecFromInts(1, 1), LE, big.NewRat(1, 1))
	if !CertifyPoint(p2, []float64{-1e-15, 0.5}) {
		t.Error("clamped near-zero coordinate failed certification")
	}
	// A clearly exterior point must not certify.
	if CertifyPoint(p, []float64{10, 10}) {
		t.Error("exterior float point certified")
	}
}

func TestCertifyPointsBatch(t *testing.T) {
	p := boxProblem()
	var c Certifier
	// First certifiable candidate wins; exterior candidates are skipped.
	got := c.CertifyPoints(p, [][]float64{
		{10, 10},    // outside
		{-1, 0.5},   // outside (x < 0)
		{1.0, 0.75}, // inside — first success
		{1.5, 0.5},  // inside too, but never reached
	})
	if got != 2 {
		t.Fatalf("CertifyPoints = %d, want 2", got)
	}
	// No candidate certifies.
	if got := c.CertifyPoints(p, [][]float64{{10, 10}, {5, 5}}); got != -1 {
		t.Fatalf("CertifyPoints = %d, want -1", got)
	}
	// Empty batch.
	if got := c.CertifyPoints(p, nil); got != -1 {
		t.Fatalf("CertifyPoints(nil) = %d, want -1", got)
	}
}

func TestCertifyFarkasRoundsFloatNoise(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint(exact.VecFromInts(1), GE, big.NewRat(2, 1))
	p.AddConstraint(exact.VecFromInts(1), LE, big.NewRat(1, 1))
	if !CertifyFarkas(p, []float64{1 - 1e-13, -1 - 1e-13}) {
		t.Error("noisy valid ray failed certification")
	}
	if CertifyFarkas(p, []float64{0, 0}) {
		t.Error("zero float ray certified")
	}
	feasible := boxProblem()
	if CertifyFarkas(feasible, []float64{-1, 1, -0.5, 0.5}) {
		t.Error("ray certified against a feasible problem")
	}
}
