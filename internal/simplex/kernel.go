package simplex

// The int64 kernel tableau: the default execution engine of the exact
// simplex, built on integer pivoting (the fraction-free scheme used by
// exact vertex-enumeration codes such as lrs). Instead of a big.Rat matrix
// the kernel keeps the scaled integer tableau
//
//	T = Δ·B⁻¹·A,  β = Δ·B⁻¹·b,  Δ > 0
//
// where Δ is a single positive scalar (the previous pivot element). Every
// true tableau value is T[i][j]/Δ, so every sign test is a sign test on an
// integer, the minimum-ratio test compares cross products, and a pivot at
// (r, c) is the rank-one integer update
//
//	T'[i][j] = (T[i][j]·T[r][c] − T[i][c]·T[r][j]) / Δ   (i ≠ r)
//
// whose division is exact (the entries are determinants of integer
// submatrices, Edmonds' theorem); the pivot row itself is left unchanged
// and Δ' = T[r][c]. No GCD normalisation ever runs — the dominant cost of
// the big.Rat tableau (big.Rat.Mul/Sub call lehmerGCD on every operation).
//
// Entries are adaptive integers: overflow-checked int64 words (math/bits)
// that promote, per element, to a retained *big.Int on the first operation
// whose exact result leaves the int64 range, and demote as soon as a
// result fits again. Rows are materialised from the Problem's cached
// Vec64/Rat64 snapshot (intForm); constraint rows are pre-scaled to
// integers, which is an equivalence transformation (row scaling by the
// positive common denominator), so the reduced-cost signs, ratio
// comparisons and Bland pivot sequence — and therefore every verdict and
// solution — are bit-identical to the big.Rat reference tableau.
// Workspace.ForceBigRat routes a solve through that reference instead; the
// differential tests pin the two paths against each other.

import (
	"math"
	"math/big"
	"math/bits"

	"repro/internal/exact"
)

// ient is one adaptive integer element of the kernel tableau.
type ient struct {
	v    int64
	wide bool     // value lives in b, not v
	b    *big.Int // retained promotion storage, allocated on first promotion
}

func (e *ient) sign() int {
	if e.wide {
		return e.b.Sign()
	}
	switch {
	case e.v > 0:
		return 1
	case e.v < 0:
		return -1
	}
	return 0
}

func (e *ient) setInt(v int64) {
	e.v = v
	e.wide = false
}

// view returns e's value as a *big.Int, materialising small values into tmp.
func (e *ient) view(tmp *big.Int) *big.Int {
	if e.wide {
		return e.b
	}
	return tmp.SetInt64(e.v)
}

// rat writes e's value divided by delta into dst (reduced by SetFrac).
func (e *ient) rat(dst *big.Rat, delta *ient, t1, t2 *big.Int) *big.Rat {
	return dst.SetFrac(e.view(t1), delta.view(t2))
}

// intRow is one LP constraint in kernel form: the coefficient vector with a
// common denominator, plus the right-hand side. ok=false keeps the big.Rat
// row authoritative (a coefficient or the RHS did not fit int64).
type intRow struct {
	coeffs exact.Vec64
	rhs    exact.Rat64
	ok     bool
}

// intForm is an immutable int64 snapshot of a Problem's constraint system,
// cached on the Problem and invalidated by the mutation generation counter.
// Solving never mutates a Problem, so concurrent solvers may share one
// snapshot; rebuilding races are benign (last store wins, all stores agree).
type intForm struct {
	gen  uint64
	rows []intRow
}

// intForm returns the problem's kernel snapshot, building it on first use
// after each mutation.
func (p *Problem) intForm() *intForm {
	if f := p.iform.Load(); f != nil && f.gen == p.gen {
		return f
	}
	f := &intForm{gen: p.gen, rows: make([]intRow, len(p.Constraints))}
	for i := range p.Constraints {
		con := &p.Constraints[i]
		v, ok := exact.Vec64FromVec(con.Coeffs)
		if !ok {
			continue
		}
		rhs, ok := exact.Rat64FromRat(con.RHS)
		if !ok {
			continue
		}
		f.rows[i] = intRow{coeffs: v, rhs: rhs, ok: true}
	}
	p.iform.Store(f)
	return f
}

// Invalidate marks the problem's cached kernel snapshot stale. Reset,
// GrowConstraint and AddConstraint call it automatically; callers that
// mutate Constraints or RHS storage directly must call it before the next
// solve.
func (p *Problem) Invalidate() { p.gen++ }

// SnapshotRow returns the int64-kernel form of constraint i from the
// problem's cached snapshot: the coefficient vector in common-denominator
// form plus the right-hand side. ok is false when the row does not fit
// int64 — callers fall back to the big.Rat Constraints[i]. The returned
// vector shares the snapshot's storage; treat it as read-only.
func (p *Problem) SnapshotRow(i int) (coeffs exact.Vec64, rhs exact.Rat64, ok bool) {
	ir := &p.intForm().rows[i]
	return ir.coeffs, ir.rhs, ir.ok
}

// ktab is the kernel tableau. Like the big.Rat tableau it lives inside a
// Workspace and reuses its row storage (including each element's retained
// big.Int promotion slot) across solves.
type ktab struct {
	iarith // Δ, promotion counter, big.Int scratch, ient arithmetic

	a      [][]ient // scaled tableau T = Δ·B⁻¹·A
	b      []ient   // scaled right-hand side β = Δ·B⁻¹·b
	c      []ient   // integer cost row (positively scaled objective)
	r      []ient   // maintained scaled reduced costs Δ·λ·(c − c_B·B⁻¹A)
	basis  []int
	basic  []bool // basic-column flags for O(1) scan lookup
	n, m   int
	frozen int

	rows     [][]ient // arena of ient rows, reused in call order
	rowsUsed int
}

// row returns a zeroed ient row of length n backed by the arena.
func (k *ktab) row(n int) []ient {
	var r []ient
	if k.rowsUsed < len(k.rows) {
		r = k.rows[k.rowsUsed]
		if cap(r) < n {
			r = make([]ient, n)
		}
		r = r[:n]
		k.rows[k.rowsUsed] = r
		k.rowsUsed++
		for i := range r {
			r[i].setInt(0)
		}
		return r
	}
	r = make([]ient, n)
	k.rows = append(k.rows, r)
	k.rowsUsed++
	return r
}

// cmpMulInt64 compares a·b with c·d via 128-bit products (never overflows;
// ok=false only for MinInt64 magnitudes, which promote).
func cmpMulInt64(a, b, c, d int64) (int, bool) {
	if a == math.MinInt64 || b == math.MinInt64 || c == math.MinInt64 || d == math.MinInt64 {
		return 0, false
	}
	lneg, lh, ll := mag128(a, b)
	rneg, rh, rl := mag128(c, d)
	lz := lh == 0 && ll == 0
	rz := rh == 0 && rl == 0
	if lz && rz {
		return 0, true
	}
	if lz {
		if rneg {
			return 1, true
		}
		return -1, true
	}
	if rz {
		if lneg {
			return -1, true
		}
		return 1, true
	}
	if lneg != rneg {
		if lneg {
			return -1, true
		}
		return 1, true
	}
	cmp := 0
	switch {
	case lh != rh:
		if lh > rh {
			cmp = 1
		} else {
			cmp = -1
		}
	case ll != rl:
		if ll > rl {
			cmp = 1
		} else {
			cmp = -1
		}
	}
	if lneg {
		cmp = -cmp
	}
	return cmp, true
}

// mag128 returns the sign and 128-bit magnitude of a·b (a, b ≠ MinInt64).
func mag128(a, b int64) (neg bool, hi, lo uint64) {
	neg = (a < 0) != (b < 0)
	hi, lo = bits.Mul64(exact.AbsU64(a), exact.AbsU64(b))
	if hi == 0 && lo == 0 {
		neg = false
	}
	return neg, hi, lo
}

// runKernel mirrors runBig on the kernel tableau: identical standard-form
// construction, crash basis, two phases and Bland pivoting — on the scaled
// integer representation instead of big.Rat elements.
func (w *Workspace) runKernel(p *Problem) Status {
	w.vecUsed = 0
	w.kactive = true
	obj := p.Objective
	if obj != nil && len(obj) != p.NumVars {
		panic("simplex: objective width mismatch")
	}

	lay := w.layout(p)
	maps, slackCol, artCol := lay.maps, lay.slack, lay.art
	n, m, nArt := lay.n, lay.m, lay.nArt

	k := &w.kt
	k.initScratch()
	k.promotions = 0
	k.rowsUsed = 0
	k.n, k.m = n+nArt, m
	k.frozen = 0
	k.delta.setInt(1)
	if cap(k.a) < m {
		k.a = make([][]ient, m)
	}
	k.a = k.a[:m]
	k.b = k.row(m)
	if cap(k.basis) < m {
		k.basis = make([]int, m)
	}
	k.basis = k.basis[:m]

	iform := p.intForm()
	for i := range p.Constraints {
		con := &p.Constraints[i]
		row := k.row(k.n)
		if !k.fillRowFast(row, &k.b[i], &iform.rows[i], maps, p.NumVars) {
			k.fillRowBig(row, &k.b[i], con, maps, p.NumVars)
		}
		switch con.Rel {
		case LE:
			row[slackCol[i]].setInt(1)
		case GE:
			row[slackCol[i]].setInt(-1)
		}
		if k.b[i].sign() < 0 {
			for j := range row {
				if row[j].sign() != 0 {
					k.neg(&row[j])
				}
			}
			k.neg(&k.b[i])
		}
		k.a[i] = row
		if artCol[i] >= 0 {
			row[artCol[i]].setInt(1)
			k.basis[i] = artCol[i]
		} else {
			k.basis[i] = slackCol[i]
		}
	}

	// Phase 1: minimise the sum of artificials.
	if nArt > 0 {
		phase1 := k.row(k.n)
		for i := 0; i < m; i++ {
			if artCol[i] >= 0 {
				phase1[artCol[i]].setInt(1)
			}
		}
		k.c = phase1
		k.syncBasic()
		k.computeReducedCosts()
		if st := k.optimize(); st == Unbounded {
			panic("simplex: phase 1 unbounded")
		}
		if k.objectiveSign() > 0 {
			w.lastPromotions = k.promotions
			return Infeasible
		}
		k.expelArtificials(n)
	}

	// Phase 2: original objective (scaled to integers by its positive
	// common denominator — reduced-cost signs are unchanged); artificial
	// columns frozen out.
	c2 := k.row(k.n)
	if obj != nil {
		k.fillCosts(c2, obj, maps, p.Sense)
	}
	k.c = c2
	k.frozen = n
	k.syncBasic()
	k.computeReducedCosts()
	st := k.optimize()
	w.lastPromotions = k.promotions
	if st == Unbounded {
		return Unbounded
	}
	if obj == nil {
		obj = w.vec(p.NumVars)
	}
	w.lastObj = obj
	return Optimal
}

// fillRowFast materialises constraint row i from its intForm snapshot,
// scaled to integers by the (positive) common denominator of the
// coefficients and the right-hand side. Row scaling is an equivalence
// transformation, so verdicts and pivot choices are unaffected. Returns
// false when the row has no snapshot or the scaling overflows.
func (k *ktab) fillRowFast(row []ient, rhs *ient, ir *intRow, maps []varMap, numVars int) bool {
	if !ir.ok {
		return false
	}
	den := ir.coeffs.Den
	rd := ir.rhs.Den()
	g := int64(exact.GCD64(uint64(den), uint64(rd)))
	scale, ok := exact.MulInt64(den, rd/g)
	if !ok {
		return false
	}
	cs := scale / den // coefficient multiplier
	rs := scale / rd  // rhs multiplier
	rv, ok := exact.MulInt64(ir.rhs.Num(), rs)
	if !ok {
		return false
	}
	for j := 0; j < numVars; j++ {
		num := ir.coeffs.Num[j]
		if num == 0 {
			continue
		}
		v, ok := exact.MulInt64(num, cs)
		if !ok {
			// Roll back the entries already written.
			for q := 0; q < j; q++ {
				row[maps[q].pos].setInt(0)
				if maps[q].neg >= 0 {
					row[maps[q].neg].setInt(0)
				}
			}
			return false
		}
		row[maps[j].pos].setInt(v)
		if maps[j].neg >= 0 {
			if v == math.MinInt64 {
				for q := 0; q <= j; q++ {
					row[maps[q].pos].setInt(0)
					if maps[q].neg >= 0 {
						row[maps[q].neg].setInt(0)
					}
				}
				return false
			}
			row[maps[j].neg].setInt(-v)
		}
	}
	rhs.setInt(rv)
	return true
}

// fillRowBig is the arbitrary-precision fallback of fillRowFast.
func (k *ktab) fillRowBig(row []ient, rhs *ient, con *Constraint, maps []varMap, numVars int) {
	// scale = lcm of all denominators (coefficients and RHS).
	scale := k.t1.Set(con.RHS.Denom())
	g := k.t2
	for j := 0; j < numVars; j++ {
		d := con.Coeffs[j].Denom()
		g.GCD(nil, nil, scale, d)
		scale.Div(scale, g)
		scale.Mul(scale, d)
	}
	val := new(big.Int)
	for j := 0; j < numVars; j++ {
		c := con.Coeffs[j]
		if c.Sign() == 0 {
			continue
		}
		val.Div(scale, c.Denom())
		val.Mul(val, c.Num())
		k.setBig(&row[maps[j].pos], val)
		if maps[j].neg >= 0 {
			val.Neg(val)
			k.setBig(&row[maps[j].neg], val)
		}
	}
	val.Div(scale, con.RHS.Denom())
	val.Mul(val, con.RHS.Num())
	k.setBig(rhs, val)
}

// fillCosts materialises the phase-2 cost row: the objective scaled to
// integers by its positive common denominator λ (reduced-cost signs, and
// therefore pivoting, are invariant under positive scaling).
func (k *ktab) fillCosts(c2 []ient, obj exact.Vec, maps []varMap, sense Sense) {
	if o64, ok := exact.Vec64FromVec(obj); ok {
		for j, num := range o64.Num {
			if num == 0 {
				continue
			}
			c2[maps[j].pos].setInt(num)
			if maps[j].neg >= 0 {
				if num == math.MinInt64 {
					k.ensureBig(&c2[maps[j].neg]).SetInt64(num)
					c2[maps[j].neg].wide = true
					c2[maps[j].neg].b.Neg(c2[maps[j].neg].b)
				} else {
					c2[maps[j].neg].setInt(-num)
				}
			}
		}
	} else {
		scale := k.t1.SetInt64(1)
		g := k.t2
		for _, c := range obj {
			d := c.Denom()
			g.GCD(nil, nil, scale, d)
			scale.Div(scale, g)
			scale.Mul(scale, d)
		}
		val := new(big.Int)
		for j, c := range obj {
			if c.Sign() == 0 {
				continue
			}
			val.Div(scale, c.Denom())
			val.Mul(val, c.Num())
			k.setBig(&c2[maps[j].pos], val)
			if maps[j].neg >= 0 {
				val.Neg(val)
				k.setBig(&c2[maps[j].neg], val)
			}
		}
	}
	if sense == Maximize {
		for j := range c2 {
			if c2[j].sign() != 0 {
				k.neg(&c2[j])
			}
		}
	}
}

// optimize runs Bland-rule primal simplex on the kernel tableau.
func (k *ktab) optimize() Status {
	for {
		col := k.enteringColumn()
		if col < 0 {
			return Optimal
		}
		row := k.leavingRow(col)
		if row < 0 {
			return Unbounded
		}
		k.pivot(row, col)
	}
}

// syncBasic rebuilds the basic-column flags from the basis.
func (k *ktab) syncBasic() {
	if cap(k.basic) < k.n {
		k.basic = make([]bool, k.n)
	}
	k.basic = k.basic[:k.n]
	for j := range k.basic {
		k.basic[j] = false
	}
	for _, b := range k.basis {
		k.basic[b] = true
	}
}

// rlimit bounds the columns whose reduced costs are maintained: frozen
// (artificial) columns never enter in phase 2, so their entries are dead.
func (k *ktab) rlimit() int {
	if k.frozen > 0 {
		return k.frozen
	}
	return k.n
}

// computeReducedCosts initialises the maintained row from the current
// basis: R[j] = C[j]·Δ − Σᵢ C[basis[i]]·T[i][j], the reduced costs scaled
// by the positive Δ·λ. Recomputing reduced costs on every entering-column
// scan is O(n·m) exact multiplications per iteration — the dominant cost
// of the big.Rat tableau; maintaining the row through pivots makes the
// scan a row of integer sign checks. The maintained values are positive
// multiples of the rationals the scan would recompute, so the Bland pivot
// sequence — and every verdict — is unchanged.
func (k *ktab) computeReducedCosts() {
	k.r = k.row(k.n)
	limit := k.rlimit()
	acc := new(big.Int)
	for j := 0; j < limit; j++ {
		rj := &k.r[j]
		if k.c[j].sign() == 0 && !k.c[j].wide {
			acc.SetInt64(0)
		} else {
			acc.Mul(k.c[j].view(k.t1), k.delta.view(k.t2))
		}
		for i := 0; i < k.m; i++ {
			cb := &k.c[k.basis[i]]
			if cb.sign() == 0 || k.a[i][j].sign() == 0 {
				continue
			}
			k.t1.Mul(cb.view(k.t1), k.a[i][j].view(k.t2))
			acc.Sub(acc, k.t1)
		}
		k.setBig(rj, acc)
	}
}

// enteringColumn returns the lowest-index column with negative reduced cost
// (Bland's rule), or -1 at optimality — the same rule, on the same exact
// signs, as the big.Rat tableau, so the pivot sequences are identical.
func (k *ktab) enteringColumn() int {
	limit := k.rlimit()
	for j := 0; j < limit; j++ {
		if k.basic[j] {
			continue
		}
		if k.r[j].sign() < 0 {
			return j
		}
	}
	return -1
}

// leavingRow performs the minimum-ratio test with Bland tie-breaking. True
// ratios are β[i]/T[i][col] (Δ cancels); comparisons cross-multiply, so no
// division happens at all.
func (k *ktab) leavingRow(col int) int {
	best := -1
	for i := 0; i < k.m; i++ {
		if k.a[i][col].sign() <= 0 {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		c := k.cmpProducts(&k.b[i], &k.a[best][col], &k.b[best], &k.a[i][col])
		if c < 0 || (c == 0 && k.basis[i] < k.basis[best]) {
			best = i
		}
	}
	return best
}

// pivot performs the fraction-free pivot at (row, col): every row except
// the pivot row gets the rank-one update, the pivot row is left as-is, and
// Δ becomes the pivot element. The maintained reduced-cost row and the
// basic-column flags are kept current.
func (k *ktab) pivot(row, col int) {
	piv := &k.a[row][col] // > 0: the ratio test only admits positive entries
	arow := k.a[row]
	for i := 0; i < k.m; i++ {
		if i == row {
			continue
		}
		ai := k.a[i]
		fac := &ai[col]
		if fac.sign() == 0 {
			// Row update degenerates to scaling by piv/Δ; still required to
			// keep the whole tableau on the common denominator Δ' = piv.
			for j := 0; j < k.n; j++ {
				if ai[j].sign() != 0 {
					k.scaleUpdate(&ai[j], piv)
				}
			}
			if k.b[i].sign() != 0 {
				k.scaleUpdate(&k.b[i], piv)
			}
			continue
		}
		for j := 0; j < k.n; j++ {
			if j == col {
				continue
			}
			if ai[j].sign() == 0 && arow[j].sign() == 0 {
				continue
			}
			k.pivotUpdate(&ai[j], &ai[j], piv, fac, &arow[j])
		}
		k.pivotUpdate(&k.b[i], &k.b[i], piv, fac, &k.b[row])
		ai[col].setInt(0)
	}
	// Maintained reduced-cost row: the same rank-one update with the cost
	// entry of the pivot column as the factor; R[col] lands on exactly zero.
	rfac := &k.r[col]
	limit := k.rlimit()
	if rfac.sign() == 0 {
		for j := 0; j < limit; j++ {
			if k.r[j].sign() != 0 {
				k.scaleUpdate(&k.r[j], piv)
			}
		}
	} else {
		for j := 0; j < limit; j++ {
			if j == col {
				continue
			}
			if k.r[j].sign() == 0 && arow[j].sign() == 0 {
				continue
			}
			k.pivotUpdate(&k.r[j], &k.r[j], piv, rfac, &arow[j])
		}
		k.r[col].setInt(0)
	}
	k.set(&k.delta, piv)
	k.basic[k.basis[row]] = false
	k.basic[col] = true
	k.basis[row] = col
}

// objectiveSign returns the sign of the current objective value
// Σᵢ c_basis[i]·β[i] (/Δλ — positive, so the sign is exact).
func (k *ktab) objectiveSign() int {
	acc := new(big.Int)
	for i, bi := range k.basis {
		if k.c[bi].sign() == 0 {
			continue
		}
		k.t1.Mul(k.c[bi].view(k.t1), k.b[i].view(k.t2))
		acc.Add(acc, k.t1)
	}
	return acc.Sign()
}

// expelArtificials pivots basic artificial variables out of the basis where
// a non-artificial pivot column exists, mirroring the big.Rat tableau.
func (k *ktab) expelArtificials(firstArt int) {
	for i := 0; i < k.m; i++ {
		if k.basis[i] < firstArt {
			continue
		}
		if k.b[i].sign() != 0 {
			continue
		}
		for j := 0; j < firstArt; j++ {
			if k.a[i][j].sign() != 0 && !k.basic[j] {
				k.kpivotAnySign(i, j)
				break
			}
		}
	}
}

// kpivotAnySign pivots at (row, col) where the pivot element may be
// negative (expelling artificials from degenerate rows). The fraction-free
// update requires Δ > 0, so a negative pivot first flips the whole pivot
// row (legal: the row represents the equation 0 = 0 ... scaled; flipping a
// tableau row's sign is a basis-change bookkeeping no-op for a degenerate
// row with β = 0).
func (k *ktab) kpivotAnySign(row, col int) {
	if k.a[row][col].sign() < 0 {
		for j := 0; j < k.n; j++ {
			if k.a[row][j].sign() != 0 {
				k.neg(&k.a[row][j])
			}
		}
		// β[row] is zero here (degenerate row), nothing to flip.
	}
	k.pivot(row, col)
}
