// Package simplex implements an exact two-phase primal simplex solver over
// the rationals.
//
// CounterPoint uses linear programming in three places (paper §4, §6 and
// Appendix A): deciding whether a counter confidence region intersects a
// model cone, pruning μpath counter signatures that lie in the interior of
// the cone, and testing individual constraint half-spaces. The paper uses
// pulp; we use this exact solver so that feasibility verdicts carry no
// floating-point ambiguity. Bland's rule guarantees termination.
package simplex

import (
	"fmt"
	"math/big"
	"sync/atomic"

	"repro/internal/exact"
)

// Sense selects the optimisation direction.
type Sense int

// Optimisation senses.
const (
	Minimize Sense = iota
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is one linear constraint Coeffs·x Rel RHS.
type Constraint struct {
	Coeffs exact.Vec
	Rel    Rel
	RHS    *big.Rat
}

// Problem is a linear program. Variables are non-negative unless marked
// free. A nil Objective means a pure feasibility problem. A Problem must
// not be copied after first use (it caches its int64-kernel snapshot in an
// atomic pointer).
type Problem struct {
	NumVars     int
	Sense       Sense
	Objective   exact.Vec
	Constraints []Constraint
	Free        []bool // optional; len NumVars if non-nil

	// gen counts structural mutations; iform caches the int64-kernel
	// snapshot of the constraint system, keyed by gen (see kernel.go).
	gen   uint64
	iform atomic.Pointer[intForm]
}

// NewProblem returns an empty problem with n non-negative variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n}
}

// AddConstraint appends coeffs·x rel rhs. Coeffs is cloned.
func (p *Problem) AddConstraint(coeffs exact.Vec, rel Rel, rhs *big.Rat) {
	if len(coeffs) != p.NumVars {
		panic(fmt.Sprintf("simplex: constraint width %d != vars %d", len(coeffs), p.NumVars))
	}
	c, r := p.GrowConstraint(rel)
	for i := range coeffs {
		c[i].Set(coeffs[i])
	}
	r.Set(rhs)
}

// Reset clears the problem for reuse with n non-negative variables,
// retaining the constraint storage accumulated by previous uses so that a
// hot loop (one LP per observation) stops allocating rationals.
func (p *Problem) Reset(n int) {
	p.NumVars = n
	p.Sense = Minimize
	p.Objective = nil
	p.Free = nil
	p.Constraints = p.Constraints[:0]
	p.Invalidate()
}

// GrowConstraint appends one constraint and hands back its coefficient
// vector (zeroed, length NumVars) and right-hand side for the caller to
// fill in place. Unlike AddConstraint it reuses the storage of constraints
// discarded by Reset, so repeated build/solve cycles are allocation-free.
func (p *Problem) GrowConstraint(rel Rel) (coeffs exact.Vec, rhs *big.Rat) {
	p.Invalidate()
	if len(p.Constraints) < cap(p.Constraints) {
		p.Constraints = p.Constraints[:len(p.Constraints)+1]
	} else {
		p.Constraints = append(p.Constraints, Constraint{})
	}
	c := &p.Constraints[len(p.Constraints)-1]
	c.Rel = rel
	if c.RHS == nil {
		c.RHS = new(big.Rat)
	} else {
		c.RHS.SetInt64(0)
	}
	for len(c.Coeffs) < p.NumVars {
		c.Coeffs = append(c.Coeffs, new(big.Rat))
	}
	c.Coeffs = c.Coeffs[:p.NumVars]
	for i := range c.Coeffs {
		c.Coeffs[i].SetInt64(0)
	}
	return c.Coeffs, c.RHS
}

// MarkFree declares variable i free (unrestricted in sign).
func (p *Problem) MarkFree(i int) {
	if p.Free == nil {
		p.Free = make([]bool, p.NumVars)
	}
	p.Free[i] = true
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Result holds the solver outcome. X and Objective are valid only when
// Status == Optimal.
type Result struct {
	Status    Status
	X         exact.Vec
	Objective *big.Rat
}

// tableau is the standard-form working representation:
// minimise c·y subject to A·y = b, y ≥ 0, b ≥ 0.
type tableau struct {
	a     []exact.Vec // m rows, each of width n
	b     exact.Vec   // m
	c     exact.Vec   // n (phase-2 costs)
	basis []int       // m basic variable indices
	n, m  int
	// frozen, when positive, is the first column index that may not enter
	// the basis (locks artificial columns out during phase 2).
	frozen int
	// Pivot-loop scratch rationals, reused across iterations so the hot
	// loop does not allocate.
	sInv, sTmp, sFactor, sRatio, sBestRatio *big.Rat
}

func (t *tableau) initScratch() {
	if t.sInv == nil {
		t.sInv = new(big.Rat)
		t.sTmp = new(big.Rat)
		t.sFactor = new(big.Rat)
		t.sRatio = new(big.Rat)
		t.sBestRatio = new(big.Rat)
	}
}

// Workspace holds reusable storage for the solver: tableau rows, cost
// vectors, the basis, and a scratch Problem. Solving through a Workspace
// avoids re-allocating the O(m·n) big.Rat tableau for every LP — the
// dominant allocation cost of per-observation feasibility testing. A
// Workspace is not safe for concurrent use; pool one per worker.
type Workspace struct {
	vecs    []exact.Vec // arena of rational vectors, reused in call order
	vecUsed int
	rows    []exact.Vec
	basis   []int
	maps    []varMap
	slack   []int
	art     []int
	t       tableau
	prob    *Problem
	lastObj exact.Vec // objective vector of the last successful run

	// ForceBigRat routes every solve through the pure big.Rat reference
	// tableau instead of the int64 kernel tableau. Verdicts and solutions
	// are bit-identical either way (the kernel is exact, element-promoting
	// on overflow); the knob exists for differential testing and as an
	// operational escape hatch.
	ForceBigRat bool

	kt             ktab
	kactive        bool   // last run used the kernel tableau
	lastPromotions uint64 // element promotions in the last kernel solve
}

// ratNegOne is the shared -1 used to flip constraint rows; Rat.Mul only
// reads its operands.
var ratNegOne = big.NewRat(-1, 1)

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Prepare resets and returns the workspace's scratch problem with n
// non-negative variables, for callers that rebuild a structurally similar
// LP on every iteration.
func (w *Workspace) Prepare(n int) *Problem {
	if w.prob == nil {
		w.prob = NewProblem(n)
	}
	w.prob.Reset(n)
	return w.prob
}

// vec returns a zeroed rational vector of length n backed by the arena.
func (w *Workspace) vec(n int) exact.Vec {
	if w.vecUsed < len(w.vecs) {
		v := w.vecs[w.vecUsed]
		for len(v) < n {
			v = append(v, new(big.Rat))
		}
		v = v[:n]
		w.vecs[w.vecUsed] = v
		w.vecUsed++
		for i := range v {
			v[i].SetInt64(0)
		}
		return v
	}
	v := exact.NewVec(n)
	w.vecs = append(w.vecs, v)
	w.vecUsed++
	return v
}

type varMap struct{ pos, neg int }

// Solve solves the problem through a freshly allocated Workspace — the
// convenience path for one-off solves only. A nil objective is treated as
// the zero objective (feasibility only). Callers that solve in a loop
// should hold a Workspace (or pool one per worker) and go through its
// Solve/SolveStatus, which reuse the rational tableau and problem storage
// across calls instead of re-allocating them per LP.
func Solve(p *Problem) Result {
	return NewWorkspace().Solve(p)
}

// Solve solves the problem using the workspace's reusable storage.
func (w *Workspace) Solve(p *Problem) Result {
	st := w.run(p)
	if st != Optimal {
		return Result{Status: st}
	}
	obj := w.lastObj

	// Extract solution. X is built from fresh rationals so the Result
	// survives workspace reuse.
	var y exact.Vec
	if w.kactive {
		kt := &w.kt
		y = w.vec(kt.n)
		for i, bi := range kt.basis {
			kt.b[i].rat(y[bi], &kt.delta, kt.t1, kt.t2)
		}
	} else {
		t := &w.t
		y = w.vec(t.n)
		for i, bi := range t.basis {
			y[bi].Set(t.b[i])
		}
	}
	x := exact.NewVec(p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		x[j].Set(y[w.maps[j].pos])
		if w.maps[j].neg >= 0 {
			x[j].Sub(x[j], y[w.maps[j].neg])
		}
	}
	objVal := obj.Dot(x)
	return Result{Status: Optimal, X: x, Objective: objVal}
}

// SolveStatus runs the solver and reports only the status, skipping
// solution extraction — the fast path for pure feasibility queries, which
// never look at X. Solve and SolveStatus never mutate the problem, so a
// cached Problem may be solved repeatedly (and concurrently, from
// distinct workspaces).
func (w *Workspace) SolveStatus(p *Problem) Status {
	return w.run(p)
}

// layout holds the standard-form column plan shared by the kernel and
// big.Rat tableaux: the variable→column maps, slack and artificial column
// assignments, the pre-artificial column count n, row count m and
// artificial count nArt.
type layout struct {
	maps       []varMap
	slack, art []int
	n, m, nArt int
}

// layout computes the standard-form plan into the workspace's reusable
// slices. Free variables split into positive and negative parts. A row
// whose slack carries coefficient +1 after sign normalisation (LE with
// RHS ≥ 0, or GE with RHS < 0) seeds the phase-1 basis with its slack
// instead of an artificial — the standard crash basis, which shrinks the
// tableau and often skips phase-1 pivoting entirely.
func (w *Workspace) layout(p *Problem) layout {
	if cap(w.maps) < p.NumVars {
		w.maps = make([]varMap, p.NumVars)
	}
	maps := w.maps[:p.NumVars]
	n := 0
	for i := 0; i < p.NumVars; i++ {
		maps[i].pos = n
		n++
		if p.Free != nil && p.Free[i] {
			maps[i].neg = n
			n++
		} else {
			maps[i].neg = -1
		}
	}
	m := len(p.Constraints)
	if cap(w.slack) < m {
		w.slack = make([]int, m)
	}
	if cap(w.art) < m {
		w.art = make([]int, m)
	}
	slackCol := w.slack[:m]
	artCol := w.art[:m]
	for i, con := range p.Constraints {
		if con.Rel == EQ {
			slackCol[i] = -1
		} else {
			slackCol[i] = n
			n++
		}
	}
	nArt := 0
	for i, con := range p.Constraints {
		negated := con.RHS.Sign() < 0
		if (con.Rel == LE && !negated) || (con.Rel == GE && negated) {
			artCol[i] = -1
		} else {
			artCol[i] = n + nArt
			nArt++
		}
	}
	return layout{maps: maps, slack: slackCol, art: artCol, n: n, m: m, nArt: nArt}
}

// run executes both simplex phases, on the int64 kernel tableau by default
// or on the big.Rat reference tableau when ForceBigRat is set, and leaves
// the final state in place for extraction.
func (w *Workspace) run(p *Problem) Status {
	if w.ForceBigRat {
		return w.runBig(p)
	}
	return w.runKernel(p)
}

// LastSolveKernel reports whether the previous solve ran on the int64
// kernel tableau, and how many element promotions (exact results leaving
// the int64 range) it performed.
func (w *Workspace) LastSolveKernel() (kernel bool, promotions uint64) {
	return w.kactive, w.lastPromotions
}

// runBig is the pure big.Rat reference implementation.
func (w *Workspace) runBig(p *Problem) Status {
	w.vecUsed = 0
	w.kactive = false
	w.lastPromotions = 0
	obj := p.Objective
	if obj == nil {
		obj = w.vec(p.NumVars)
	}
	if len(obj) != p.NumVars {
		panic("simplex: objective width mismatch")
	}

	lay := w.layout(p)
	maps, slackCol, artCol := lay.maps, lay.slack, lay.art
	n, m, nArt := lay.n, lay.m, lay.nArt

	t := &w.t
	t.n, t.m = n+nArt, m
	t.frozen = 0
	t.initScratch()
	if cap(w.rows) < m {
		w.rows = make([]exact.Vec, m)
	}
	t.a = w.rows[:m]
	t.b = w.vec(m)
	if cap(w.basis) < m {
		w.basis = make([]int, m)
	}
	t.basis = w.basis[:m]
	negOne := ratNegOne

	for i, con := range p.Constraints {
		row := w.vec(t.n)
		for j := 0; j < p.NumVars; j++ {
			if con.Coeffs[j].Sign() == 0 {
				continue
			}
			row[maps[j].pos].Set(con.Coeffs[j])
			if maps[j].neg >= 0 {
				row[maps[j].neg].Neg(con.Coeffs[j])
			}
		}
		rhs := t.b[i]
		rhs.Set(con.RHS)
		switch con.Rel {
		case LE:
			row[slackCol[i]].SetInt64(1)
		case GE:
			row[slackCol[i]].SetInt64(-1)
		}
		// ensure b >= 0
		if rhs.Sign() < 0 {
			for j := range row {
				row[j].Mul(row[j], negOne)
			}
			rhs.Neg(rhs)
		}
		t.a[i] = row
		if artCol[i] >= 0 {
			row[artCol[i]].SetInt64(1)
			t.basis[i] = artCol[i]
		} else {
			// Slack coefficient is +1 here by construction.
			t.basis[i] = slackCol[i]
		}
	}

	// Phase 1: minimise the sum of artificials (skipped when the crash
	// basis is already feasible).
	if nArt > 0 {
		phase1 := w.vec(t.n)
		for i := 0; i < m; i++ {
			if artCol[i] >= 0 {
				phase1[artCol[i]].SetInt64(1)
			}
		}
		t.c = phase1
		if st := t.optimize(); st == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded cannot happen.
			panic("simplex: phase 1 unbounded")
		}
		if t.objectiveValue().Sign() > 0 {
			return Infeasible
		}
		// Drive remaining artificials out of the basis where possible.
		t.expelArtificials(n)
	}

	// Phase 2: original objective over standard-form columns; artificial
	// columns get prohibitive handling by freezing them at zero (they are
	// nonbasic or basic at zero after phase 1; we simply forbid entering).
	c2 := w.vec(t.n)
	for j := 0; j < p.NumVars; j++ {
		c2[maps[j].pos].Set(obj[j])
		if maps[j].neg >= 0 {
			c2[maps[j].neg].Neg(obj[j])
		}
	}
	if p.Sense == Maximize {
		for j := range c2 {
			c2[j].Neg(c2[j])
		}
	}
	t.c = c2
	t.frozen = n // columns ≥ n (artificials) may not enter
	if st := t.optimize(); st == Unbounded {
		return Unbounded
	}
	w.lastObj = obj
	return Optimal
}

// optimize runs Bland-rule primal simplex on the current tableau/costs.
func (t *tableau) optimize() Status {
	for iter := 0; ; iter++ {
		col := t.enteringColumn()
		if col < 0 {
			return Optimal
		}
		row := t.leavingRow(col)
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
}

// enteringColumn returns the lowest-index column with negative reduced
// cost (Bland's rule), or -1 at optimality.
func (t *tableau) enteringColumn() int {
	// reduced cost r_j = c_j - cB · B^-1 A_j; with explicit tableau the
	// rows of t.a are already B^-1 A, so r_j = c_j - Σ_i c_basis[i]·a[i][j].
	limit := t.n
	if t.frozen > 0 {
		limit = t.frozen
	}
	r, tmp := t.sRatio, t.sTmp
	for j := 0; j < limit; j++ {
		if t.isBasic(j) {
			continue
		}
		r.Set(t.c[j])
		for i := 0; i < t.m; i++ {
			cb := t.c[t.basis[i]]
			if cb.Sign() == 0 || t.a[i][j].Sign() == 0 {
				continue
			}
			tmp.Mul(cb, t.a[i][j])
			r.Sub(r, tmp)
		}
		if r.Sign() < 0 {
			return j
		}
	}
	return -1
}

func (t *tableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

// leavingRow performs the minimum-ratio test with Bland tie-breaking
// (lowest basis index), or -1 if the column is unbounded.
func (t *tableau) leavingRow(col int) int {
	best := -1
	bestRatio, ratio := t.sBestRatio, t.sRatio
	for i := 0; i < t.m; i++ {
		if t.a[i][col].Sign() <= 0 {
			continue
		}
		ratio.Quo(t.b[i], t.a[i][col])
		if best < 0 || ratio.Cmp(bestRatio) < 0 ||
			(ratio.Cmp(bestRatio) == 0 && t.basis[i] < t.basis[best]) {
			best = i
			bestRatio.Set(ratio)
		}
	}
	return best
}

// pivot performs a full tableau pivot at (row, col).
func (t *tableau) pivot(row, col int) {
	inv := t.sInv.Inv(t.a[row][col])
	for j := 0; j < t.n; j++ {
		t.a[row][j].Mul(t.a[row][j], inv)
	}
	t.b[row].Mul(t.b[row], inv)
	tmp, factor := t.sTmp, t.sFactor
	for i := 0; i < t.m; i++ {
		if i == row || t.a[i][col].Sign() == 0 {
			continue
		}
		factor.Set(t.a[i][col])
		for j := 0; j < t.n; j++ {
			if t.a[row][j].Sign() == 0 {
				continue
			}
			tmp.Mul(factor, t.a[row][j])
			t.a[i][j].Sub(t.a[i][j], tmp)
		}
		tmp.Mul(factor, t.b[row])
		t.b[i].Sub(t.b[i], tmp)
	}
	t.basis[row] = col
}

// objectiveValue returns c·y for the current basic solution.
func (t *tableau) objectiveValue() *big.Rat {
	v := new(big.Rat)
	tmp := new(big.Rat)
	for i, bi := range t.basis {
		if t.c[bi].Sign() == 0 {
			continue
		}
		tmp.Mul(t.c[bi], t.b[i])
		v.Add(v, tmp)
	}
	return v
}

// expelArtificials pivots basic artificial variables (columns ≥ firstArt)
// out of the basis when a non-artificial pivot column exists; rows that are
// entirely zero over real columns are redundant and left in place (the
// artificial stays basic at value zero, harmlessly).
func (t *tableau) expelArtificials(firstArt int) {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < firstArt {
			continue
		}
		if t.b[i].Sign() != 0 {
			continue // should not happen after a zero phase-1 optimum
		}
		for j := 0; j < firstArt; j++ {
			if t.a[i][j].Sign() != 0 && !t.isBasic(j) {
				t.pivot(i, j)
				break
			}
		}
	}
}
