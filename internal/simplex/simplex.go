// Package simplex implements an exact two-phase primal simplex solver over
// the rationals.
//
// CounterPoint uses linear programming in three places (paper §4, §6 and
// Appendix A): deciding whether a counter confidence region intersects a
// model cone, pruning μpath counter signatures that lie in the interior of
// the cone, and testing individual constraint half-spaces. The paper uses
// pulp; we use this exact solver so that feasibility verdicts carry no
// floating-point ambiguity. Bland's rule guarantees termination.
package simplex

import (
	"fmt"
	"math/big"

	"repro/internal/exact"
)

// Sense selects the optimisation direction.
type Sense int

// Optimisation senses.
const (
	Minimize Sense = iota
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is one linear constraint Coeffs·x Rel RHS.
type Constraint struct {
	Coeffs exact.Vec
	Rel    Rel
	RHS    *big.Rat
}

// Problem is a linear program. Variables are non-negative unless marked
// free. A nil Objective means a pure feasibility problem.
type Problem struct {
	NumVars     int
	Sense       Sense
	Objective   exact.Vec
	Constraints []Constraint
	Free        []bool // optional; len NumVars if non-nil
}

// NewProblem returns an empty problem with n non-negative variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n}
}

// AddConstraint appends coeffs·x rel rhs. Coeffs is cloned.
func (p *Problem) AddConstraint(coeffs exact.Vec, rel Rel, rhs *big.Rat) {
	if len(coeffs) != p.NumVars {
		panic(fmt.Sprintf("simplex: constraint width %d != vars %d", len(coeffs), p.NumVars))
	}
	p.Constraints = append(p.Constraints, Constraint{
		Coeffs: coeffs.Clone(), Rel: rel, RHS: new(big.Rat).Set(rhs),
	})
}

// MarkFree declares variable i free (unrestricted in sign).
func (p *Problem) MarkFree(i int) {
	if p.Free == nil {
		p.Free = make([]bool, p.NumVars)
	}
	p.Free[i] = true
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Result holds the solver outcome. X and Objective are valid only when
// Status == Optimal.
type Result struct {
	Status    Status
	X         exact.Vec
	Objective *big.Rat
}

// tableau is the standard-form working representation:
// minimise c·y subject to A·y = b, y ≥ 0, b ≥ 0.
type tableau struct {
	a     []exact.Vec // m rows, each of width n
	b     exact.Vec   // m
	c     exact.Vec   // n (phase-2 costs)
	basis []int       // m basic variable indices
	n, m  int
	// frozen, when positive, is the first column index that may not enter
	// the basis (locks artificial columns out during phase 2).
	frozen int
}

// Solve solves the problem. A nil objective is treated as the zero
// objective (feasibility only).
func Solve(p *Problem) Result {
	obj := p.Objective
	if obj == nil {
		obj = exact.NewVec(p.NumVars)
	}
	if len(obj) != p.NumVars {
		panic("simplex: objective width mismatch")
	}

	// Map original variables to standard-form columns. Free variables
	// split into positive and negative parts.
	type varMap struct{ pos, neg int }
	maps := make([]varMap, p.NumVars)
	n := 0
	for i := 0; i < p.NumVars; i++ {
		maps[i].pos = n
		n++
		if p.Free != nil && p.Free[i] {
			maps[i].neg = n
			n++
		} else {
			maps[i].neg = -1
		}
	}
	m := len(p.Constraints)

	// Count slack columns.
	slackCol := make([]int, m)
	for i, con := range p.Constraints {
		if con.Rel == EQ {
			slackCol[i] = -1
		} else {
			slackCol[i] = n
			n++
		}
	}

	t := &tableau{n: n + m, m: m} // + m artificial columns
	t.a = make([]exact.Vec, m)
	t.b = exact.NewVec(m)
	t.basis = make([]int, m)
	negOne := big.NewRat(-1, 1)

	for i, con := range p.Constraints {
		row := exact.NewVec(t.n)
		for j := 0; j < p.NumVars; j++ {
			if con.Coeffs[j].Sign() == 0 {
				continue
			}
			row[maps[j].pos].Set(con.Coeffs[j])
			if maps[j].neg >= 0 {
				row[maps[j].neg].Neg(con.Coeffs[j])
			}
		}
		rhs := new(big.Rat).Set(con.RHS)
		switch con.Rel {
		case LE:
			row[slackCol[i]].SetInt64(1)
		case GE:
			row[slackCol[i]].SetInt64(-1)
		}
		// ensure b >= 0
		if rhs.Sign() < 0 {
			for j := range row {
				row[j].Mul(row[j], negOne)
			}
			rhs.Neg(rhs)
		}
		// artificial variable for row i
		art := n + i
		row[art].SetInt64(1)
		t.a[i] = row
		t.b[i].Set(rhs)
		t.basis[i] = art
	}

	// Phase 1: minimise sum of artificials.
	phase1 := exact.NewVec(t.n)
	for i := 0; i < m; i++ {
		phase1[n+i].SetInt64(1)
	}
	t.c = phase1
	if st := t.optimize(); st == Unbounded {
		// Phase-1 objective is bounded below by 0; unbounded cannot happen.
		panic("simplex: phase 1 unbounded")
	}
	if t.objectiveValue().Sign() > 0 {
		return Result{Status: Infeasible}
	}
	// Drive remaining artificials out of the basis where possible.
	t.expelArtificials(n)

	// Phase 2: original objective over standard-form columns; artificial
	// columns get prohibitive handling by freezing them at zero (they are
	// nonbasic or basic at zero after phase 1; we simply forbid entering).
	c2 := exact.NewVec(t.n)
	for j := 0; j < p.NumVars; j++ {
		c2[maps[j].pos].Set(obj[j])
		if maps[j].neg >= 0 {
			c2[maps[j].neg].Neg(obj[j])
		}
	}
	if p.Sense == Maximize {
		for j := range c2 {
			c2[j].Neg(c2[j])
		}
	}
	t.c = c2
	t.frozen = n // columns ≥ n (artificials) may not enter
	if st := t.optimize(); st == Unbounded {
		return Result{Status: Unbounded}
	}

	// Extract solution.
	y := exact.NewVec(t.n)
	for i, bi := range t.basis {
		y[bi].Set(t.b[i])
	}
	x := exact.NewVec(p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		x[j].Set(y[maps[j].pos])
		if maps[j].neg >= 0 {
			x[j].Sub(x[j], y[maps[j].neg])
		}
	}
	objVal := obj.Dot(x)
	return Result{Status: Optimal, X: x, Objective: objVal}
}

// optimize runs Bland-rule primal simplex on the current tableau/costs.
func (t *tableau) optimize() Status {
	for iter := 0; ; iter++ {
		col := t.enteringColumn()
		if col < 0 {
			return Optimal
		}
		row := t.leavingRow(col)
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
}

// enteringColumn returns the lowest-index column with negative reduced
// cost (Bland's rule), or -1 at optimality.
func (t *tableau) enteringColumn() int {
	// reduced cost r_j = c_j - cB · B^-1 A_j; with explicit tableau the
	// rows of t.a are already B^-1 A, so r_j = c_j - Σ_i c_basis[i]·a[i][j].
	limit := t.n
	if t.frozen > 0 {
		limit = t.frozen
	}
	r := new(big.Rat)
	tmp := new(big.Rat)
	for j := 0; j < limit; j++ {
		if t.isBasic(j) {
			continue
		}
		r.Set(t.c[j])
		for i := 0; i < t.m; i++ {
			cb := t.c[t.basis[i]]
			if cb.Sign() == 0 || t.a[i][j].Sign() == 0 {
				continue
			}
			tmp.Mul(cb, t.a[i][j])
			r.Sub(r, tmp)
		}
		if r.Sign() < 0 {
			return j
		}
	}
	return -1
}

func (t *tableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

// leavingRow performs the minimum-ratio test with Bland tie-breaking
// (lowest basis index), or -1 if the column is unbounded.
func (t *tableau) leavingRow(col int) int {
	best := -1
	var bestRatio *big.Rat
	ratio := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if t.a[i][col].Sign() <= 0 {
			continue
		}
		ratio.Quo(t.b[i], t.a[i][col])
		if best < 0 || ratio.Cmp(bestRatio) < 0 ||
			(ratio.Cmp(bestRatio) == 0 && t.basis[i] < t.basis[best]) {
			best = i
			bestRatio = new(big.Rat).Set(ratio)
		}
	}
	return best
}

// pivot performs a full tableau pivot at (row, col).
func (t *tableau) pivot(row, col int) {
	inv := new(big.Rat).Inv(t.a[row][col])
	for j := 0; j < t.n; j++ {
		t.a[row][j].Mul(t.a[row][j], inv)
	}
	t.b[row].Mul(t.b[row], inv)
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == row || t.a[i][col].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(t.a[i][col])
		for j := 0; j < t.n; j++ {
			if t.a[row][j].Sign() == 0 {
				continue
			}
			tmp.Mul(factor, t.a[row][j])
			t.a[i][j].Sub(t.a[i][j], tmp)
		}
		tmp.Mul(factor, t.b[row])
		t.b[i].Sub(t.b[i], tmp)
	}
	t.basis[row] = col
}

// objectiveValue returns c·y for the current basic solution.
func (t *tableau) objectiveValue() *big.Rat {
	v := new(big.Rat)
	tmp := new(big.Rat)
	for i, bi := range t.basis {
		if t.c[bi].Sign() == 0 {
			continue
		}
		tmp.Mul(t.c[bi], t.b[i])
		v.Add(v, tmp)
	}
	return v
}

// expelArtificials pivots basic artificial variables (columns ≥ firstArt)
// out of the basis when a non-artificial pivot column exists; rows that are
// entirely zero over real columns are redundant and left in place (the
// artificial stays basic at value zero, harmlessly).
func (t *tableau) expelArtificials(firstArt int) {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < firstArt {
			continue
		}
		if t.b[i].Sign() != 0 {
			continue // should not happen after a zero phase-1 optimum
		}
		for j := 0; j < firstArt; j++ {
			if t.a[i][j].Sign() != 0 && !t.isBasic(j) {
				t.pivot(i, j)
				break
			}
		}
	}
}
