package simplex

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func TestMaximizeBasic(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 → x=4, y=0, obj 12.
	p := NewProblem(2)
	p.Sense = Maximize
	p.Objective = exact.VecFromInts(3, 2)
	p.AddConstraint(exact.VecFromInts(1, 1), LE, rat(4, 1))
	p.AddConstraint(exact.VecFromInts(1, 3), LE, rat(6, 1))
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Objective.Cmp(rat(12, 1)) != 0 {
		t.Fatalf("objective %s, want 12", res.Objective.RatString())
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6 → intersection (8/5, 6/5), obj 14/5.
	p := NewProblem(2)
	p.Sense = Minimize
	p.Objective = exact.VecFromInts(1, 1)
	p.AddConstraint(exact.VecFromInts(1, 2), GE, rat(4, 1))
	p.AddConstraint(exact.VecFromInts(3, 1), GE, rat(6, 1))
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Objective.Cmp(rat(14, 5)) != 0 {
		t.Fatalf("objective %s, want 14/5", res.Objective.RatString())
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 cannot both hold.
	p := NewProblem(1)
	p.AddConstraint(exact.VecFromInts(1), LE, rat(1, 1))
	p.AddConstraint(exact.VecFromInts(1), GE, rat(2, 1))
	if res := Solve(p); res.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x s.t. x >= 0 only.
	p := NewProblem(1)
	p.Sense = Maximize
	p.Objective = exact.VecFromInts(1)
	p.AddConstraint(exact.VecFromInts(1), GE, rat(0, 1))
	if res := Solve(p); res.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", res.Status)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y = 3, x <= 2 → obj 3.
	p := NewProblem(2)
	p.Sense = Maximize
	p.Objective = exact.VecFromInts(1, 1)
	p.AddConstraint(exact.VecFromInts(1, 1), EQ, rat(3, 1))
	p.AddConstraint(exact.VecFromInts(1, 0), LE, rat(2, 1))
	res := Solve(p)
	if res.Status != Optimal || res.Objective.Cmp(rat(3, 1)) != 0 {
		t.Fatalf("got %v obj=%v", res.Status, res.Objective)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x with x free and x >= -5 → x = -5.
	p := NewProblem(1)
	p.MarkFree(0)
	p.Sense = Minimize
	p.Objective = exact.VecFromInts(1)
	p.AddConstraint(exact.VecFromInts(1), GE, rat(-5, 1))
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.X[0].Cmp(rat(-5, 1)) != 0 {
		t.Fatalf("x = %s, want -5", res.X[0].RatString())
	}
}

func TestFeasibilityOnly(t *testing.T) {
	// No objective: just decide feasibility of x + y = 2, x,y >= 0.
	p := NewProblem(2)
	p.AddConstraint(exact.VecFromInts(1, 1), EQ, rat(2, 1))
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	sum := new(big.Rat).Add(res.X[0], res.X[1])
	if sum.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("solution violates constraint: %v", res.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -3 means x >= 3; min x → 3.
	p := NewProblem(1)
	p.Sense = Minimize
	p.Objective = exact.VecFromInts(1)
	p.AddConstraint(exact.VecFromInts(-1), LE, rat(-3, 1))
	res := Solve(p)
	if res.Status != Optimal || res.X[0].Cmp(rat(3, 1)) != 0 {
		t.Fatalf("got %v x=%v", res.Status, res.X)
	}
}

func TestDegenerateCycleGuard(t *testing.T) {
	// The classic Beale cycling example; Bland's rule must terminate.
	p := NewProblem(4)
	p.Sense = Minimize
	p.Objective = exact.Vec{rat(-3, 4), rat(150, 1), rat(-1, 50), rat(6, 1)}
	p.AddConstraint(exact.Vec{rat(1, 4), rat(-60, 1), rat(-1, 25), rat(9, 1)}, LE, rat(0, 1))
	p.AddConstraint(exact.Vec{rat(1, 2), rat(-90, 1), rat(-1, 50), rat(3, 1)}, LE, rat(0, 1))
	p.AddConstraint(exact.Vec{rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)}, LE, rat(1, 1))
	res := Solve(p)
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Objective.Cmp(rat(-1, 20)) != 0 {
		t.Fatalf("objective %s, want -1/20", res.Objective.RatString())
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows exercise the artificial-expulsion path.
	p := NewProblem(2)
	p.Sense = Maximize
	p.Objective = exact.VecFromInts(1, 0)
	p.AddConstraint(exact.VecFromInts(1, 1), EQ, rat(2, 1))
	p.AddConstraint(exact.VecFromInts(2, 2), EQ, rat(4, 1))
	res := Solve(p)
	if res.Status != Optimal || res.Objective.Cmp(rat(2, 1)) != 0 {
		t.Fatalf("got %v obj=%v", res.Status, res.Objective)
	}
}

func TestSolutionSatisfiesConstraintsRandom(t *testing.T) {
	// Property: whenever Solve reports Optimal, the returned point satisfies
	// every constraint exactly.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nv := rng.Intn(4) + 1
		nc := rng.Intn(5) + 1
		p := NewProblem(nv)
		p.Sense = Sense(rng.Intn(2))
		obj := exact.NewVec(nv)
		for i := range obj {
			obj[i].SetInt64(int64(rng.Intn(7) - 3))
		}
		p.Objective = obj
		for c := 0; c < nc; c++ {
			coeffs := exact.NewVec(nv)
			for i := range coeffs {
				coeffs[i].SetInt64(int64(rng.Intn(7) - 3))
			}
			rel := Rel(rng.Intn(3))
			p.AddConstraint(coeffs, rel, rat(int64(rng.Intn(11)-5), 1))
		}
		res := Solve(p)
		if res.Status != Optimal {
			continue
		}
		for ci, con := range p.Constraints {
			lhs := con.Coeffs.Dot(res.X)
			cmp := lhs.Cmp(con.RHS)
			bad := false
			switch con.Rel {
			case LE:
				bad = cmp > 0
			case GE:
				bad = cmp < 0
			case EQ:
				bad = cmp != 0
			}
			if bad {
				t.Fatalf("trial %d: constraint %d violated: %s %s %s",
					trial, ci, lhs.RatString(), con.Rel, con.RHS.RatString())
			}
		}
		for i, x := range res.X {
			if (p.Free == nil || !p.Free[i]) && x.Sign() < 0 {
				t.Fatalf("trial %d: x[%d]=%s negative", trial, i, x.RatString())
			}
		}
	}
}
