package simplex

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

// randomFeasibilityProblem builds a small box-intersection LP like the ones
// core generates: random coefficient rows with paired <=/>= bounds.
func randomFeasibilityProblem(rng *rand.Rand, vars, rows int) *Problem {
	p := NewProblem(vars)
	for i := 0; i < rows; i++ {
		coeffs := exact.NewVec(vars)
		for j := range coeffs {
			coeffs[j].SetFrac64(int64(rng.Intn(21)-10), 4)
		}
		center := int64(rng.Intn(200) - 100)
		p.AddConstraint(coeffs, LE, big.NewRat(center+8, 1))
		p.AddConstraint(coeffs, GE, big.NewRat(center-8, 1))
	}
	return p
}

// TestWorkspaceMatchesFreshSolve reuses one workspace across many problems
// of varying shapes and checks every verdict against a fresh solve.
func TestWorkspaceMatchesFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWorkspace()
	for trial := 0; trial < 60; trial++ {
		vars := 1 + rng.Intn(6)
		rows := 1 + rng.Intn(5)
		p := randomFeasibilityProblem(rng, vars, rows)
		got := w.Solve(p)
		want := Solve(p)
		if got.Status != want.Status {
			t.Fatalf("trial %d: workspace status %v, fresh status %v", trial, got.Status, want.Status)
		}
		if got.Status == Optimal && got.Objective.Cmp(want.Objective) != 0 {
			t.Fatalf("trial %d: workspace objective %v, fresh %v", trial, got.Objective, want.Objective)
		}
	}
}

// TestWorkspaceResultSurvivesReuse checks that a Result extracted from one
// solve is not clobbered when the workspace is reused.
func TestWorkspaceResultSurvivesReuse(t *testing.T) {
	w := NewWorkspace()
	p1 := NewProblem(2)
	p1.Sense = Maximize
	p1.Objective = exact.VecFromInts(3, 2)
	p1.AddConstraint(exact.VecFromInts(1, 1), LE, big.NewRat(4, 1))
	p1.AddConstraint(exact.VecFromInts(1, 3), LE, big.NewRat(6, 1))
	r1 := w.Solve(p1)
	if r1.Status != Optimal {
		t.Fatalf("p1 status %v", r1.Status)
	}
	objBefore := new(big.Rat).Set(r1.Objective)
	xBefore := r1.X.Clone()

	p2 := randomFeasibilityProblem(rand.New(rand.NewSource(1)), 5, 4)
	_ = w.Solve(p2)

	if r1.Objective.Cmp(objBefore) != 0 {
		t.Fatalf("objective clobbered by reuse: %v -> %v", objBefore, r1.Objective)
	}
	if !r1.X.Equal(xBefore) {
		t.Fatalf("solution clobbered by reuse: %v -> %v", xBefore, r1.X)
	}
}

// TestProblemResetAndGrowConstraint checks the in-place rebuild path reuses
// storage without leaking stale coefficients into the next LP.
func TestProblemResetAndGrowConstraint(t *testing.T) {
	w := NewWorkspace()
	p := w.Prepare(2)
	c, rhs := p.GrowConstraint(LE)
	c[0].SetInt64(1)
	c[1].SetInt64(1)
	rhs.SetInt64(-1) // x+y <= -1 with x,y >= 0: infeasible
	if got := w.Solve(p).Status; got != Infeasible {
		t.Fatalf("infeasible problem solved as %v", got)
	}

	// Rebuild with a feasible constraint; the stale coefficients and RHS
	// must be fully overwritten by GrowConstraint.
	p = w.Prepare(2)
	c, rhs = p.GrowConstraint(LE)
	if c[0].Sign() != 0 || c[1].Sign() != 0 || rhs.Sign() != 0 {
		t.Fatalf("GrowConstraint returned dirty storage: %v %v %v", c[0], c[1], rhs)
	}
	c[0].SetInt64(1)
	rhs.SetInt64(5)
	if got := w.Solve(p).Status; got != Optimal {
		t.Fatalf("feasible problem solved as %v", got)
	}

	// Shrinking the variable count must trim reused coefficient vectors.
	p = w.Prepare(1)
	c, _ = p.GrowConstraint(LE)
	if len(c) != 1 {
		t.Fatalf("GrowConstraint width %d after Reset(1)", len(c))
	}
}

// BenchmarkSolveFresh and BenchmarkSolveWorkspace record the allocation win
// of tableau reuse on a core-shaped feasibility LP.
func BenchmarkSolveFresh(b *testing.B) {
	p := randomFeasibilityProblem(rand.New(rand.NewSource(2)), 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Solve(p)
	}
}

func BenchmarkSolveWorkspace(b *testing.B) {
	p := randomFeasibilityProblem(rand.New(rand.NewSource(2)), 8, 8)
	w := NewWorkspace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Solve(p)
	}
}
