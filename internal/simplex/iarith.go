package simplex

// iarith is the shared arithmetic core of the fraction-free integer
// tableaux: the common denominator Δ, the promotion counter, the big.Int
// scratch registers and every elementary operation on adaptive ient
// elements. Both the primal kernel tableau (ktab) and the warm-start dual
// solver (WarmSolver) embed one, so the overflow-checked fast paths and
// their exact-division asserts exist exactly once.

import (
	"math"
	"math/big"

	"repro/internal/exact"
)

type iarith struct {
	delta ient // Δ, the previous pivot element; always > 0

	// promotions counts element promotions (small operands whose exact
	// result left the int64 range) in the current solve.
	promotions uint64

	t1, t2, t3, t4 *big.Int // scratch for mixed-representation operations
}

func (k *iarith) initScratch() {
	if k.t1 == nil {
		k.t1 = new(big.Int)
		k.t2 = new(big.Int)
		k.t3 = new(big.Int)
		k.t4 = new(big.Int)
	}
}

// settle stores the value of dst.b into dst, demoting to the int64
// representation when it fits.
func (k *iarith) settle(dst *ient) {
	if dst.b.IsInt64() {
		dst.v = dst.b.Int64()
		dst.wide = false
		return
	}
	dst.wide = true
}

func (k *iarith) ensureBig(dst *ient) *big.Int {
	if dst.b == nil {
		dst.b = new(big.Int)
	}
	return dst.b
}

// set copies src's value into dst.
func (k *iarith) set(dst, src *ient) {
	if !src.wide {
		dst.v = src.v
		dst.wide = false
		return
	}
	k.ensureBig(dst).Set(src.b)
	dst.wide = true
}

// setBig stores an arbitrary big.Int value.
func (k *iarith) setBig(dst *ient, v *big.Int) {
	if v.IsInt64() {
		dst.v = v.Int64()
		dst.wide = false
		return
	}
	k.ensureBig(dst).Set(v)
	dst.wide = true
}

// neg sets dst = −dst.
func (k *iarith) neg(dst *ient) {
	if !dst.wide {
		if dst.v != math.MinInt64 {
			dst.v = -dst.v
			return
		}
		k.promotions++
		k.ensureBig(dst).SetInt64(dst.v)
		dst.wide = true
	}
	dst.b.Neg(dst.b)
	k.settle(dst)
}

// pivotUpdate sets dst = (x·p − y·z)/Δ, the fraction-free rank-one update.
// The division is exact by construction (Edmonds); the int64 path asserts
// it, so a bookkeeping bug can never silently corrupt a verdict. dst may
// alias any operand.
func (k *iarith) pivotUpdate(dst, x, p, y, z *ient) {
	if !x.wide && !p.wide && !y.wide && !z.wide && !k.delta.wide {
		m1, ok1 := exact.MulInt64(x.v, p.v)
		m2, ok2 := exact.MulInt64(y.v, z.v)
		if ok1 && ok2 {
			d, ok := exact.SubInt64(m1, m2)
			if ok {
				q, rem := d/k.delta.v, d%k.delta.v
				if rem != 0 {
					panic("simplex: fraction-free pivot division not exact")
				}
				dst.v = q
				dst.wide = false
				return
			}
		}
		k.promotions++
	}
	m1 := k.t1.Mul(x.view(k.t1), p.view(k.t2))
	m2 := k.t3.Mul(y.view(k.t3), z.view(k.t4))
	m1.Sub(m1, m2)
	m1.Quo(m1, k.delta.view(k.t2))
	k.setBig(dst, m1)
}

// scaleUpdate sets dst = dst·p/Δ — the degenerate rank-one update for rows
// whose pivot-column entry is zero, which must still move onto the new
// common denominator.
func (k *iarith) scaleUpdate(dst, p *ient) {
	if !dst.wide && !p.wide && !k.delta.wide {
		m, ok := exact.MulInt64(dst.v, p.v)
		if ok {
			q, rem := m/k.delta.v, m%k.delta.v
			if rem != 0 {
				panic("simplex: fraction-free pivot division not exact")
			}
			dst.v = q
			dst.wide = false
			return
		}
		k.promotions++
	}
	m := k.t1.Mul(dst.view(k.t1), p.view(k.t2))
	m.Quo(m, k.delta.view(k.t2))
	k.setBig(dst, m)
}

// mulAcc adds x·y into the big.Int accumulator acc.
func (k *iarith) mulAcc(acc *big.Int, x, y *ient) {
	k.t1.Mul(x.view(k.t1), y.view(k.t2))
	acc.Add(acc, k.t1)
}

// mulSetInt sets dst = x·m for an int64 multiplier.
func (k *iarith) mulSetInt(dst, x *ient, m int64) {
	if !x.wide {
		if v, ok := exact.MulInt64(x.v, m); ok {
			dst.v = v
			dst.wide = false
			return
		}
		k.promotions++
	}
	k.t1.SetInt64(m)
	k.t1.Mul(x.view(k.t2), k.t1)
	k.setBig(dst, k.t1)
}

// addMulInt adds x·m into dst for an int64 multiplier. dst may alias x.
func (k *iarith) addMulInt(dst, x *ient, m int64) {
	if !dst.wide && !x.wide {
		if p, ok := exact.MulInt64(x.v, m); ok {
			if s, ok2 := exact.AddInt64(dst.v, p); ok2 {
				dst.v = s
				dst.wide = false
				return
			}
		}
		k.promotions++
	}
	k.t1.SetInt64(m)
	k.t1.Mul(x.view(k.t2), k.t1)
	k.t3.Add(dst.view(k.t4), k.t1)
	k.setBig(dst, k.t3)
}

// cmpProducts compares a·b with c·d exactly (the cross-multiplied
// minimum-ratio test; all ratio denominators are positive).
func (k *iarith) cmpProducts(a, b, c, d *ient) int {
	if !a.wide && !b.wide && !c.wide && !d.wide {
		if cmp, ok := cmpMulInt64(a.v, b.v, c.v, d.v); ok {
			return cmp
		}
	}
	k.t1.Mul(a.view(k.t1), b.view(k.t2))
	k.t3.Mul(c.view(k.t3), d.view(k.t4))
	return k.t1.Cmp(k.t3)
}
