package simplex

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

// randomProblem builds a random bounded-looking LP.
func randomProblem(rng *rand.Rand) *Problem {
	nv := rng.Intn(4) + 1
	p := NewProblem(nv)
	obj := exact.NewVec(nv)
	for i := range obj {
		obj[i].SetInt64(int64(rng.Intn(9) - 4))
	}
	p.Objective = obj
	nc := rng.Intn(4) + 2
	for c := 0; c < nc; c++ {
		coeffs := exact.NewVec(nv)
		for i := range coeffs {
			coeffs[i].SetInt64(int64(rng.Intn(7) - 3))
		}
		p.AddConstraint(coeffs, Rel(rng.Intn(3)), big.NewRat(int64(rng.Intn(15)-3), 1))
	}
	// Box the variables so maximisation stays bounded.
	for i := 0; i < nv; i++ {
		unit := exact.NewVec(nv)
		unit[i].SetInt64(1)
		p.AddConstraint(unit, LE, big.NewRat(50, 1))
	}
	return p
}

// TestMinMaxBracket: for the same feasible region, min c·x ≤ max c·x, and
// both are attained by feasible points.
func TestMinMaxBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		p := randomProblem(rng)
		p.Sense = Minimize
		rmin := Solve(p)
		p.Sense = Maximize
		rmax := Solve(p)
		if rmin.Status == Infeasible != (rmax.Status == Infeasible) {
			t.Fatalf("trial %d: feasibility must not depend on objective sense", trial)
		}
		if rmin.Status != Optimal || rmax.Status != Optimal {
			continue
		}
		if rmin.Objective.Cmp(rmax.Objective) > 0 {
			t.Fatalf("trial %d: min %s > max %s", trial,
				rmin.Objective.RatString(), rmax.Objective.RatString())
		}
	}
}

// TestOptimalityLocal: perturbing the optimum along any single coordinate
// (staying feasible) never improves the objective — a first-order
// optimality spot check.
func TestOptimalityLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	step := big.NewRat(1, 4)
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		p.Sense = Minimize
		res := Solve(p)
		if res.Status != Optimal {
			continue
		}
		for dim := 0; dim < p.NumVars; dim++ {
			for _, sign := range []int64{1, -1} {
				x := res.X.Clone()
				delta := new(big.Rat).Mul(step, big.NewRat(sign, 1))
				x[dim].Add(x[dim], delta)
				if x[dim].Sign() < 0 {
					continue // violates non-negativity
				}
				feasible := true
				for _, con := range p.Constraints {
					lhs := con.Coeffs.Dot(x)
					cmp := lhs.Cmp(con.RHS)
					if (con.Rel == LE && cmp > 0) || (con.Rel == GE && cmp < 0) || (con.Rel == EQ && cmp != 0) {
						feasible = false
						break
					}
				}
				if !feasible {
					continue
				}
				val := p.Objective.Dot(x)
				if val.Cmp(res.Objective) < 0 {
					t.Fatalf("trial %d: perturbation improves objective: %s < %s",
						trial, val.RatString(), res.Objective.RatString())
				}
			}
		}
	}
}
