package simplex

// Warm-started dual simplex for pure feasibility LPs.
//
// The walk workloads solve long runs of region LPs that differ from their
// predecessor in one or two rows: the axis coefficient rows repeat
// verbatim (the axes are snapped to a dyadic grid and the covariance
// structure barely moves between neighbouring regions) while the
// quantised slab bounds drift. Solving each LP from a cold basis repays
// none of that overlap. A WarmSolver keeps the optimal basis of the
// previous LP in fraction-free integer form (the same Δ-scaled tableau as
// the primal kernel, see kernel.go) and re-enters via the dual simplex:
//
//   - A feasibility LP has a zero objective, so every basis is dual
//     feasible and no phase 1 is ever needed — after any edit the dual
//     method restores primal feasibility directly, usually in a handful
//     of pivots.
//   - A bound change on row r updates β alone: the slack column of the
//     tableau is Δ·B⁻¹·e_r, so β += T[·][slack_r]·δb.
//   - Deleting row r pivots its slack into the basis (a representational
//     pivot, no ratio test) and drops the then-unit row; the slack column
//     is retired and provably zero forever after.
//   - Adding a row extends the basis by the new row's slack:
//     t = Δ·a − Σᵢ a[basis(i)]·T[i] and β_new = Δ·b − Σᵢ a[basis(i)]·β_i,
//     with det(B') = det(B) so Δ is unchanged.
//
// Dual pivots may select negative pivot elements, which the fraction-free
// scheme (Δ > 0) cannot host directly; the pivot row — including β — is
// flipped first. A row flip negates one column of the basis matrix, a
// unimodular change under which every tableau entry remains a ± minor of
// the constraint system, so the exact-division invariant of pivotUpdate
// (asserted on the int64 path) is preserved.
//
// Verdicts need no pinning to a pivot sequence: feasibility is a property
// of the LP, not of the path taken, so a warm verdict is bit-identical to
// a cold one whenever both are correct — which the randomized
// differential tests against Workspace.SolveStatus enforce.
//
// A WarmSolver only seeds on the second sighting of a constraint family
// (two successive supported LPs sharing at least half their rows).
// Workloads that never repeat structure — explore sweeps evaluate each
// LP once — therefore pay only the canonicalization scan and keep going
// through the float filter, which beats a cold dual solve on large LPs.

import (
	"math"

	"repro/internal/exact"
)

// wcons is one live constraint in canonical warm form: the primitive
// LE-normalised coefficient vector prim (content ±1, GCD 1), the reduced
// right-hand side rn/rd, and the integer tableau form scale·prim·x ≤ bInt
// with bInt/scale = rn/rd.
type wcons struct {
	prim  []int64
	hash  uint64 // FNV-1a over prim, for multiset matching
	rn    int64  // canonical rhs numerator
	rd    int64  // canonical rhs denominator, > 0
	scale int64  // tableau row multiplier, > 0 (fixed at row creation)
	bInt  int64  // integer tableau rhs: bInt/scale == rn/rd
	slack int    // slack column index (≥ nv)
}

const (
	warmEmpty  = iota // no state
	warmPrimed        // canonical rows recorded, waiting for a second sighting
	warmSeeded        // live tableau
)

// WarmSolver carries a fraction-free dual-simplex tableau between
// consecutive feasibility solves of structurally overlapping LPs. It is
// not safe for concurrent use; pool one per worker (the engine keeps one
// per model inside each worker's scratch).
type WarmSolver struct {
	iarith

	state int
	nv    int // structural variable count of the current family

	cons []wcons // live constraints (order immaterial)

	// The tableau: m = len(cons) rows over width columns (nv structural
	// columns followed by one slack column per row ever added since the
	// last rebuild; retired slack columns are dead and identically zero).
	a        [][]ient
	b        []ient
	basis    []int  // basis[i] = column basic in row i
	basicRow []int  // column → row it is basic in, or −1
	dead     []bool // retired slack columns
	width    int

	// Per-call scratch, reused across solves.
	in       []wcons
	primPool [][]int64
	primUsed int
	consIdx  map[uint64][]int
	claimed  []bool
	matchOf  []int
	delSlack []int
	addRows  []int

	lastWarm   bool
	lastPivots uint64

	// warmSolves/coldSeeds/pivots accumulate across the solver's lifetime
	// (telemetry surfaced through core.SolverStats).
	warmSolves uint64
	coldSeeds  uint64
}

// NewWarmSolver returns an empty warm solver.
func NewWarmSolver() *WarmSolver {
	w := &WarmSolver{}
	w.initScratch()
	return w
}

// Drop discards all cached state; the next supported solve primes afresh.
func (w *WarmSolver) Drop() {
	w.state = warmEmpty
	w.cons = w.cons[:0]
	w.a = w.a[:0]
	w.b = w.b[:0]
	w.basis = w.basis[:0]
	w.width = 0
}

// LastSolve reports whether the previous successful Feasible call re-used
// a cached basis, and how many dual pivots it performed.
func (w *WarmSolver) LastSolve() (warm bool, dualPivots uint64) {
	return w.lastWarm, w.lastPivots
}

// Totals reports lifetime counts: basis-reusing solves and cold seeds
// (full dual solves that established a fresh tableau).
func (w *WarmSolver) Totals() (warmSolves, coldSeeds uint64) {
	return w.warmSolves, w.coldSeeds
}

// Feasible attempts to decide p against the cached basis. ok is false
// when p is outside the solver's domain (an objective, free variables,
// equality rows, or coefficients beyond int64), or when the solver
// declines to seed (first sighting of a constraint family, or too little
// overlap with the cached one) — the caller then decides p through its
// usual cold path. When ok is true, feasible is the exact verdict.
func (w *WarmSolver) Feasible(p *Problem) (feasible, ok bool) {
	w.lastWarm = false
	w.lastPivots = 0
	rows, supported := w.canonRows(p)
	if !supported {
		w.Drop()
		return false, false
	}
	if len(rows) == 0 {
		return true, true // no constraints: x = 0 is feasible
	}
	switch w.state {
	case warmSeeded:
		if p.NumVars == w.nv && w.diff(rows) {
			if f, solved := w.applyAndSolve(rows); solved {
				return f, true
			}
			// The warm path bailed (pivot cap, arithmetic edge) and
			// dropped its state; rows may alias rebuilt scratch, so the
			// sighting protocol restarts on the next call.
			return false, false
		}
		// Too little overlap: restart the sighting protocol on the new
		// family, solving this LP cold at the caller.
		w.prime(rows, p.NumVars)
		return false, false
	case warmPrimed:
		if p.NumVars == w.nv && w.overlapsPrimed(rows) {
			if f, solved := w.seed(rows, p.NumVars); solved {
				return f, true
			}
			return false, false
		}
		w.prime(rows, p.NumVars)
		return false, false
	default:
		w.prime(rows, p.NumVars)
		return false, false
	}
}

// --- canonicalization ---

// canonRows converts p's constraints to canonical warm form. supported is
// false when the problem lies outside the warm domain.
func (w *WarmSolver) canonRows(p *Problem) (rows []wcons, supported bool) {
	if p.Objective != nil {
		return nil, false
	}
	for _, f := range p.Free {
		if f {
			return nil, false
		}
	}
	w.primUsed = 0
	rows = w.in[:0]
	for i := range p.Constraints {
		rel := p.Constraints[i].Rel
		if rel == EQ {
			w.in = rows
			return nil, false
		}
		v, rhs, ok := p.SnapshotRow(i)
		if !ok {
			w.in = rows
			return nil, false
		}
		wc, ok := w.canonRow(v, rhs, rel == GE)
		if !ok {
			w.in = rows
			return nil, false
		}
		rows = append(rows, wc)
	}
	w.in = rows
	return rows, true
}

// primRow hands out a scratch []int64 of length n from the per-call pool.
func (w *WarmSolver) primRow(n int) []int64 {
	if w.primUsed < len(w.primPool) {
		r := w.primPool[w.primUsed]
		if cap(r) < n {
			r = make([]int64, n)
			w.primPool[w.primUsed] = r
		}
		w.primUsed++
		return r[:n]
	}
	r := make([]int64, n)
	w.primPool = append(w.primPool, r)
	w.primUsed++
	return r
}

// canonRow canonicalises one ≤/≥ row given its int64 snapshot. flip
// negates the row (GE → LE). The prim slice is pool-backed: valid until
// the next Feasible call, copied on retention.
func (w *WarmSolver) canonRow(v exact.Vec64, rhs exact.Rat64, flip bool) (wcons, bool) {
	prim := w.primRow(len(v.Num))
	var g uint64
	for _, x := range v.Num {
		if x != 0 {
			g = exact.GCD64(g, exact.AbsU64(x))
		}
	}
	if g == 0 {
		// Zero row: 0 ≤ rhs (after normalisation) — keep only the sign.
		for j := range prim {
			prim[j] = 0
		}
		s := int64(rhs.Sign())
		if flip {
			s = -s
		}
		return wcons{prim: prim, hash: hashPrim(prim), rn: s, rd: 1, scale: 1, bInt: s}, true
	}
	gi := int64(g)
	for j, x := range v.Num {
		q := x / gi
		if flip {
			if q == math.MinInt64 {
				return wcons{}, false
			}
			q = -q
		}
		prim[j] = q
	}
	// prim·x ≤ rhs·Den/g  (value rhs is rhs.Num()/rhs.Den()).
	rn, ok := exact.MulInt64(rhs.Num(), v.Den)
	if !ok {
		return wcons{}, false
	}
	rd, ok := exact.MulInt64(rhs.Den(), gi)
	if !ok {
		return wcons{}, false
	}
	if flip {
		if rn == math.MinInt64 {
			return wcons{}, false
		}
		rn = -rn
	}
	if rn == 0 {
		rd = 1
	} else {
		gg := int64(exact.GCD64(exact.AbsU64(rn), uint64(rd)))
		rn /= gg
		rd /= gg
	}
	return wcons{prim: prim, hash: hashPrim(prim), rn: rn, rd: rd, scale: rd, bInt: rn}, true
}

// hashPrim is FNV-1a over the row's int64 coefficients.
func hashPrim(prim []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range prim {
		u := uint64(x)
		for s := 0; s < 64; s += 8 {
			h ^= (u >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func primEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// --- sighting protocol ---

// prime records rows as the candidate family, copying the pool-backed
// prim slices into retained storage.
func (w *WarmSolver) prime(rows []wcons, nv int) {
	w.Drop()
	w.nv = nv
	w.cons = w.cons[:0]
	for _, rc := range rows {
		rc.prim = append([]int64(nil), rc.prim...)
		w.cons = append(w.cons, rc)
	}
	w.state = warmPrimed
}

// overlapsPrimed reports whether at least half of rows match the primed
// family by coefficient vector.
func (w *WarmSolver) overlapsPrimed(rows []wcons) bool {
	matched := w.matchRows(rows)
	return matched*2 >= len(rows)
}

// matchRows runs the multiset matching of rows against w.cons and
// returns the match count (exact or rhs-only). Side effects: w.matchOf,
// w.claimed, w.delSlack, w.addRows are (re)filled.
func (w *WarmSolver) matchRows(rows []wcons) int {
	if w.consIdx == nil {
		w.consIdx = make(map[uint64][]int)
	}
	for k := range w.consIdx {
		delete(w.consIdx, k)
	}
	for i := range w.cons {
		w.consIdx[w.cons[i].hash] = append(w.consIdx[w.cons[i].hash], i)
	}
	w.claimed = w.claimed[:0]
	for range w.cons {
		w.claimed = append(w.claimed, false)
	}
	w.matchOf = w.matchOf[:0]
	for range rows {
		w.matchOf = append(w.matchOf, -1)
	}
	matched := 0
	// Pass 1: exact matches (coefficients and rhs).
	for ri := range rows {
		r := &rows[ri]
		for _, ci := range w.consIdx[r.hash] {
			c := &w.cons[ci]
			if w.claimed[ci] || c.rn != r.rn || c.rd != r.rd || !primEqual(c.prim, r.prim) {
				continue
			}
			w.claimed[ci] = true
			w.matchOf[ri] = ci
			matched++
			break
		}
	}
	// Pass 2: coefficient matches with a changed rhs.
	for ri := range rows {
		if w.matchOf[ri] >= 0 {
			continue
		}
		r := &rows[ri]
		for _, ci := range w.consIdx[r.hash] {
			c := &w.cons[ci]
			if w.claimed[ci] || !primEqual(c.prim, r.prim) {
				continue
			}
			w.claimed[ci] = true
			w.matchOf[ri] = ci
			matched++
			break
		}
	}
	w.delSlack = w.delSlack[:0]
	for ci := range w.cons {
		if !w.claimed[ci] {
			w.delSlack = append(w.delSlack, w.cons[ci].slack)
		}
	}
	w.addRows = w.addRows[:0]
	for ri := range rows {
		if w.matchOf[ri] < 0 {
			w.addRows = append(w.addRows, ri)
		}
	}
	return matched
}

// diff matches rows against the live constraint set and reports whether
// the overlap justifies a warm re-entry.
func (w *WarmSolver) diff(rows []wcons) bool {
	matched := w.matchRows(rows)
	return matched*2 >= len(rows)
}

// --- tableau construction ---

// seed builds a fresh all-slack tableau from rows and solves it by dual
// simplex (a cold seed: no basis was reused).
func (w *WarmSolver) seed(rows []wcons, nv int) (feasible, solved bool) {
	w.nv = nv
	m := len(rows)
	w.cons = w.cons[:0]
	w.width = nv + m
	w.growColumns(w.width)
	w.a = w.a[:0]
	w.b = w.b[:0]
	w.basis = w.basis[:0]
	for j := 0; j < w.width; j++ {
		w.dead[j] = false
		w.basicRow[j] = -1
	}
	for i := 0; i < m; i++ {
		rc := rows[i]
		rc.prim = append([]int64(nil), rc.prim...)
		rc.slack = nv + i
		row := w.growRow()
		for j, pv := range rc.prim {
			if pv == 0 {
				continue
			}
			sv, ok := exact.MulInt64(pv, rc.scale)
			if !ok {
				w.Drop()
				return false, false
			}
			row[j].setInt(sv)
		}
		row[rc.slack].setInt(1)
		w.b[i].setInt(rc.bInt)
		w.basis[i] = rc.slack
		w.basicRow[rc.slack] = i
		w.cons = append(w.cons, rc)
	}
	w.delta.setInt(1)
	w.state = warmSeeded
	f, ok := w.dual(50*m + 1000)
	if !ok {
		w.Drop()
		return false, false
	}
	w.coldSeeds++
	return f, true
}

// growColumns ensures per-column bookkeeping covers width columns.
func (w *WarmSolver) growColumns(width int) {
	for len(w.basicRow) < width {
		w.basicRow = append(w.basicRow, -1)
	}
	for len(w.dead) < width {
		w.dead = append(w.dead, false)
	}
}

// growRow appends one zeroed tableau row (and β entry) of the current
// width, reusing retained storage past len(w.a).
func (w *WarmSolver) growRow() []ient {
	m := len(w.a)
	if m < cap(w.a) {
		w.a = w.a[:m+1]
	} else {
		w.a = append(w.a, nil)
	}
	row := w.a[m]
	if cap(row) < w.width {
		grown := make([]ient, w.width)
		copy(grown, row)
		row = grown
	}
	row = row[:w.width]
	for j := range row {
		row[j].setInt(0)
	}
	w.a[m] = row
	if m < cap(w.b) {
		w.b = w.b[:m+1]
	} else {
		w.b = append(w.b, ient{})
	}
	w.b[m].setInt(0)
	if m < cap(w.basis) {
		w.basis = w.basis[:m+1]
	} else {
		w.basis = append(w.basis, 0)
	}
	return row
}

// extendWidth adds one column to the tableau (for a new slack).
func (w *WarmSolver) extendWidth() int {
	col := w.width
	w.width++
	w.growColumns(w.width)
	w.dead[col] = false
	w.basicRow[col] = -1
	for i := range w.a {
		row := w.a[i]
		if cap(row) > len(row) {
			row = row[:len(row)+1]
		} else {
			row = append(row, ient{})
		}
		row[len(row)-1].setInt(0)
		w.a[i] = row
	}
	return col
}

// --- warm application ---

// applyAndSolve edits the live tableau to represent rows (whose diff was
// just computed by diff/matchRows) and re-solves by dual simplex.
// solved=false means the warm path gave up; the solver state is dropped.
func (w *WarmSolver) applyAndSolve(rows []wcons) (feasible, solved bool) {
	// Retire tableau rows and deleted slack columns before growth: dead
	// columns keep the width bounded.
	for _, sc := range w.delSlack {
		if !w.deleteRow(sc) {
			w.Drop()
			return false, false
		}
	}
	// Bound changes on matched rows.
	for ri := range rows {
		ci := w.matchOf[ri]
		if ci < 0 {
			continue
		}
		// Deletions compacted w.cons; matchOf indices were maintained.
		c := &w.cons[ci]
		r := &rows[ri]
		if c.rn == r.rn && c.rd == r.rd {
			continue
		}
		if !w.updateRHS(c, r.rn, r.rd) {
			// Same coefficients, but the new bound will not sit on the
			// stored row scale: replace the row outright.
			if !w.deleteRow(c.slack) {
				w.Drop()
				return false, false
			}
			w.addRows = append(w.addRows, ri)
		}
	}
	// Additions.
	for _, ri := range w.addRows {
		if !w.addRow(&rows[ri]) {
			w.Drop()
			return false, false
		}
	}
	m := len(w.a)
	// Rebuild when retired columns dominate the tableau width.
	if w.width-w.nv > 2*m+32 {
		nv := w.nv
		rebuilt := w.in[:0] // cons already owns retained prim storage
		rebuilt = append(rebuilt, w.cons...)
		if f, ok := w.seed(rebuilt, nv); ok {
			w.lastWarm = true // the basis was not reused, but the family was
			w.warmSolves++
			return f, true
		}
		return false, false
	}
	f, ok := w.dual(20*m + 400)
	if !ok {
		// Pivot cap: one cold rebuild attempt before giving up.
		nv := w.nv
		rebuilt := w.in[:0]
		rebuilt = append(rebuilt, w.cons...)
		if f, ok := w.seed(rebuilt, nv); ok {
			return f, true
		}
		return false, false
	}
	w.lastWarm = true
	w.warmSolves++
	return f, true
}

// updateRHS applies a bound change to live constraint c via the direct β
// update. Returns false when the new bound is not integral at c's stored
// row scale (caller falls back to delete+add).
func (w *WarmSolver) updateRHS(c *wcons, rn, rd int64) bool {
	if c.scale%rd != 0 {
		return false
	}
	bNew, ok := exact.MulInt64(rn, c.scale/rd)
	if !ok {
		return false
	}
	db, ok := exact.SubInt64(bNew, c.bInt)
	if !ok {
		return false
	}
	if db != 0 {
		sc := c.slack
		for i := range w.a {
			if w.a[i][sc].sign() != 0 {
				w.addMulInt(&w.b[i], &w.a[i][sc], db)
			}
		}
	}
	c.bInt = bNew
	c.rn, c.rd = rn, rd
	return true
}

// deleteRow removes the constraint owning slack column sc: the slack is
// pivoted into the basis (making its row the unit row of that column),
// the row is dropped and the column retired.
func (w *WarmSolver) deleteRow(sc int) bool {
	q := w.basicRow[sc]
	if q < 0 {
		q = -1
		for i := range w.a {
			if w.a[i][sc].sign() != 0 {
				q = i
				break
			}
		}
		if q < 0 {
			return false // B⁻¹ column cannot be zero; bail defensively
		}
		if w.a[q][sc].sign() < 0 {
			w.flipRow(q)
		}
		w.pivotAt(q, sc)
		w.lastPivots++
	}
	last := len(w.a) - 1
	if q != last {
		w.a[q], w.a[last] = w.a[last], w.a[q]
		w.b[q], w.b[last] = w.b[last], w.b[q]
		w.basis[q] = w.basis[last]
		w.basicRow[w.basis[q]] = q
	}
	w.a = w.a[:last]
	w.b = w.b[:last]
	w.basis = w.basis[:last]
	w.basicRow[sc] = -1
	w.dead[sc] = true
	// Drop the constraint record, fixing up matchOf for the swap.
	ci := -1
	for i := range w.cons {
		if w.cons[i].slack == sc {
			ci = i
			break
		}
	}
	if ci < 0 {
		return false
	}
	lastC := len(w.cons) - 1
	w.cons[ci] = w.cons[lastC]
	w.cons = w.cons[:lastC]
	for ri, mi := range w.matchOf {
		switch {
		case mi == ci:
			w.matchOf[ri] = -1
		case mi == lastC:
			w.matchOf[ri] = ci
		}
	}
	return true
}

// addRow appends constraint r (pool-backed prim; copied here) as a new
// tableau row expressed over the current basis:
//
//	t = Δ·a − Σᵢ a[basis(i)]·T[i],  β = Δ·b − Σᵢ a[basis(i)]·β_i
//
// where a is the new row of the constraint matrix (structural entries
// scale·prim, 1 on its fresh slack). det is unchanged.
func (w *WarmSolver) addRow(r *wcons) bool {
	rc := *r
	rc.prim = append([]int64(nil), rc.prim...)
	rc.slack = w.extendWidth()
	row := w.growRow()
	m := len(w.a) - 1
	// Structural A-row entries at full precision.
	sA := make([]int64, w.nv)
	for j, pv := range rc.prim {
		if pv == 0 {
			continue
		}
		sv, ok := exact.MulInt64(pv, rc.scale)
		if !ok {
			return false
		}
		sA[j] = sv
	}
	// t starts as Δ·a.
	for j := 0; j < w.nv; j++ {
		if sA[j] != 0 {
			w.mulSetInt(&row[j], &w.delta, sA[j])
		}
	}
	w.mulSetInt(&row[rc.slack], &w.delta, 1)
	w.mulSetInt(&w.b[m], &w.delta, rc.bInt)
	// Subtract a[basis(i)]·T[i] for basic columns the new row touches —
	// only structural basics can carry a nonzero coefficient.
	for i := 0; i < m; i++ {
		bv := w.basis[i]
		if bv >= w.nv || sA[bv] == 0 {
			continue
		}
		coef := sA[bv]
		if coef == math.MinInt64 {
			return false
		}
		ti := w.a[i]
		for j := 0; j < w.width; j++ {
			if w.dead[j] || ti[j].sign() == 0 {
				continue
			}
			w.addMulInt(&row[j], &ti[j], -coef)
		}
		if w.b[i].sign() != 0 {
			w.addMulInt(&w.b[m], &w.b[i], -coef)
		}
	}
	w.basis[m] = rc.slack
	w.basicRow[rc.slack] = m
	w.cons = append(w.cons, rc)
	return true
}

// --- dual simplex ---

// dual restores primal feasibility by Bland-rule dual simplex: leave the
// row whose basic variable has the smallest index among β < 0 rows; enter
// the smallest column with a negative entry in that row. A β < 0 row with
// no negative entry is a Farkas witness of infeasibility. ok=false only
// when maxPivots is exceeded.
func (w *WarmSolver) dual(maxPivots int) (feasible, ok bool) {
	pivots := 0
	for {
		r := -1
		bestVar := int(^uint(0) >> 1)
		for i := range w.a {
			if w.b[i].sign() < 0 && w.basis[i] < bestVar {
				bestVar = w.basis[i]
				r = i
			}
		}
		if r < 0 {
			return true, true
		}
		c := -1
		arow := w.a[r]
		for j := 0; j < w.width; j++ {
			if w.dead[j] || w.basicRow[j] >= 0 {
				continue
			}
			if arow[j].sign() < 0 {
				c = j
				break
			}
		}
		if c < 0 {
			return false, true
		}
		pivots++
		if pivots > maxPivots {
			return false, false
		}
		w.lastPivots++
		// The pivot element is negative; flip the whole row (β included)
		// first so the fraction-free update sees a positive pivot.
		w.flipRow(r)
		w.pivotAt(r, c)
	}
}

// flipRow negates tableau row r including β — a sign change of one basis
// column, preserving the represented system and the minor structure.
func (w *WarmSolver) flipRow(r int) {
	row := w.a[r]
	for j := 0; j < w.width; j++ {
		if row[j].sign() != 0 {
			w.neg(&row[j])
		}
	}
	if w.b[r].sign() != 0 {
		w.neg(&w.b[r])
	}
}

// pivotAt performs the fraction-free pivot at (row, col); the pivot
// element must be positive. Mirrors ktab.pivot without a cost row, and
// maintains basicRow.
func (w *WarmSolver) pivotAt(row, col int) {
	piv := &w.a[row][col]
	arow := w.a[row]
	m := len(w.a)
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		ai := w.a[i]
		fac := &ai[col]
		if fac.sign() == 0 {
			for j := 0; j < w.width; j++ {
				if ai[j].sign() != 0 {
					w.scaleUpdate(&ai[j], piv)
				}
			}
			if w.b[i].sign() != 0 {
				w.scaleUpdate(&w.b[i], piv)
			}
			continue
		}
		for j := 0; j < w.width; j++ {
			if j == col {
				continue
			}
			if ai[j].sign() == 0 && arow[j].sign() == 0 {
				continue
			}
			w.pivotUpdate(&ai[j], &ai[j], piv, fac, &arow[j])
		}
		w.pivotUpdate(&w.b[i], &w.b[i], piv, fac, &w.b[row])
		ai[col].setInt(0)
	}
	w.set(&w.delta, piv)
	w.basicRow[w.basis[row]] = -1
	w.basis[row] = col
	w.basicRow[col] = row
}
