package simplex

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

// warmRef solves p cold through a fresh big.Rat-capable workspace.
func warmRef(t *testing.T, ws *Workspace, p *Problem) bool {
	t.Helper()
	return ws.SolveStatus(p) == Optimal
}

// buildRandomLP builds a random feasibility LP over n variables with m
// LE/GE rows whose coefficients and bounds are small dyadic rationals —
// the shape RegionLP produces.
func buildRandomLP(rng *rand.Rand, p *Problem, n, m int) {
	p.Reset(n)
	for i := 0; i < m; i++ {
		rel := LE
		if rng.Intn(3) == 0 {
			rel = GE
		}
		coeffs, rhs := p.GrowConstraint(rel)
		nz := 0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			coeffs[j].SetFrac64(int64(rng.Intn(17)-8), int64(1<<uint(rng.Intn(4))))
			if coeffs[j].Sign() != 0 {
				nz++
			}
		}
		_ = nz // zero rows are legal and must be handled
		rhs.SetFrac64(int64(rng.Intn(33)-16), int64(1<<uint(rng.Intn(5))))
	}
}

// mutateLP applies a small random structural edit to p: a bound change,
// a row addition, a row deletion, or a row permutation (which must be
// invisible to the canonical matcher).
func mutateLP(rng *rand.Rand, p *Problem) {
	if len(p.Constraints) == 0 {
		coeffs, rhs := p.GrowConstraint(LE)
		coeffs[rng.Intn(len(coeffs))].SetInt64(1)
		rhs.SetInt64(int64(rng.Intn(9) - 4))
		return
	}
	switch rng.Intn(4) {
	case 0: // bound change
		i := rng.Intn(len(p.Constraints))
		p.Constraints[i].RHS.SetFrac64(int64(rng.Intn(65)-32), int64(1<<uint(rng.Intn(5))))
		p.Invalidate()
	case 1: // row addition
		rel := LE
		if rng.Intn(3) == 0 {
			rel = GE
		}
		coeffs, rhs := p.GrowConstraint(rel)
		for j := range coeffs {
			if rng.Intn(2) == 0 {
				coeffs[j].SetFrac64(int64(rng.Intn(17)-8), int64(1<<uint(rng.Intn(4))))
			}
		}
		rhs.SetFrac64(int64(rng.Intn(33)-16), int64(1<<uint(rng.Intn(5))))
	case 2: // row deletion
		i := rng.Intn(len(p.Constraints))
		last := len(p.Constraints) - 1
		p.Constraints[i], p.Constraints[last] = p.Constraints[last], p.Constraints[i]
		p.Constraints = p.Constraints[:last]
		p.Invalidate()
	case 3: // row permutation
		rng.Shuffle(len(p.Constraints), func(i, j int) {
			p.Constraints[i], p.Constraints[j] = p.Constraints[j], p.Constraints[i]
		})
		p.Invalidate()
	}
}

// TestWarmSolverDifferential drives WarmSolver through randomized
// mutation sequences, checking every supported verdict against a cold
// solve of the identical problem. The fraction-free exact-division
// asserts inside the kernel arithmetic double as invariant checks: a
// bookkeeping bug in the warm tableau panics instead of lying.
func TestWarmSolverDifferential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ws := NewWorkspace()
		warm := NewWarmSolver()
		p := NewProblem(0)
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(8)
		buildRandomLP(rng, p, n, m)
		supportedVerdicts := 0
		for step := 0; step < 60; step++ {
			want := warmRef(t, ws, p)
			got, ok := warm.Feasible(p)
			if ok {
				supportedVerdicts++
				if got != want {
					t.Fatalf("seed %d step %d: warm verdict %v, cold verdict %v (m=%d)",
						seed, step, got, want, len(p.Constraints))
				}
			}
			mutateLP(rng, p)
		}
		if supportedVerdicts == 0 {
			t.Fatalf("seed %d: warm solver never engaged", seed)
		}
	}
}

// TestWarmSolverRepeatedSolve checks the sighting protocol: the first
// sighting of a family is declined, the second seeds (cold), and later
// re-solves of near-identical LPs reuse the basis.
func TestWarmSolverRepeatedSolve(t *testing.T) {
	warm := NewWarmSolver()
	p := NewProblem(3)
	coeffs, rhs := p.GrowConstraint(LE)
	coeffs[0].SetInt64(1)
	coeffs[1].SetInt64(2)
	rhs.SetInt64(10)
	coeffs, rhs = p.GrowConstraint(GE)
	coeffs[1].SetInt64(1)
	coeffs[2].SetInt64(1)
	rhs.SetInt64(2)

	if _, ok := warm.Feasible(p); ok {
		t.Fatal("first sighting should be declined")
	}
	feas, ok := warm.Feasible(p)
	if !ok || !feas {
		t.Fatalf("second sighting: got (%v, %v), want (true, true)", feas, ok)
	}
	if warmed, _ := warm.LastSolve(); warmed {
		t.Fatal("second sighting should be a cold seed, not a warm solve")
	}

	// Bound drift: same coefficient rows, new rhs — must warm-start.
	p.Constraints[0].RHS.SetInt64(12)
	p.Invalidate()
	feas, ok = warm.Feasible(p)
	if !ok || !feas {
		t.Fatalf("bound drift: got (%v, %v), want (true, true)", feas, ok)
	}
	if warmed, _ := warm.LastSolve(); !warmed {
		t.Fatal("bound drift should reuse the cached basis")
	}

	// Tighten to infeasibility: x1+2x2 ≤ −1 with x ≥ 0 has no solution.
	p.Constraints[0].RHS.SetInt64(-1)
	p.Invalidate()
	feas, ok = warm.Feasible(p)
	if !ok || feas {
		t.Fatalf("infeasible drift: got (%v, %v), want (false, true)", feas, ok)
	}
}

// TestWarmSolverUnsupported pins the bail-outs: objectives, equality
// rows and free variables are all outside the warm domain.
func TestWarmSolverUnsupported(t *testing.T) {
	warm := NewWarmSolver()

	obj := NewProblem(2)
	obj.Objective = exact.NewVec(2)
	c, r := obj.GrowConstraint(LE)
	c[0].SetInt64(1)
	r.SetInt64(1)
	if _, ok := warm.Feasible(obj); ok {
		t.Fatal("objective LP must be unsupported")
	}

	eq := NewProblem(2)
	c, r = eq.GrowConstraint(EQ)
	c[0].SetInt64(1)
	r.SetInt64(1)
	if _, ok := warm.Feasible(eq); ok {
		t.Fatal("equality row must be unsupported")
	}

	free := NewProblem(2)
	free.MarkFree(1)
	c, r = free.GrowConstraint(LE)
	c[0].SetInt64(1)
	r.SetInt64(1)
	if _, ok := warm.Feasible(free); ok {
		t.Fatal("free variable must be unsupported")
	}
}

// TestWarmSolverRowPermutation checks that reordering rows is invisible:
// a permuted family still warm-starts and agrees with the cold verdict.
func TestWarmSolverRowPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := NewWorkspace()
	warm := NewWarmSolver()
	p := NewProblem(4)
	buildRandomLP(rng, p, 4, 6)
	warm.Feasible(p) // prime
	if _, ok := warm.Feasible(p); !ok {
		t.Fatal("second sighting should seed")
	}
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(p.Constraints), func(i, j int) {
			p.Constraints[i], p.Constraints[j] = p.Constraints[j], p.Constraints[i]
		})
		p.Invalidate()
		want := warmRef(t, ws, p)
		got, ok := warm.Feasible(p)
		if !ok {
			t.Fatalf("trial %d: permuted family should stay supported", trial)
		}
		if got != want {
			t.Fatalf("trial %d: warm %v, cold %v", trial, got, want)
		}
	}
}

// TestWarmSolverZeroRow exercises degenerate all-zero coefficient rows,
// whose canonical form keeps only the bound's sign.
func TestWarmSolverZeroRow(t *testing.T) {
	ws := NewWorkspace()
	for _, rhs := range []int64{-3, 0, 5} {
		warm := NewWarmSolver()
		p := NewProblem(2)
		c, r := p.GrowConstraint(LE)
		c[0].SetInt64(1)
		r.SetInt64(4)
		_, zr := p.GrowConstraint(LE) // zero row: 0 ≤ rhs
		zr.SetInt64(rhs)
		warm.Feasible(p)
		got, ok := warm.Feasible(p)
		if !ok {
			t.Fatalf("rhs=%d: zero row should be supported", rhs)
		}
		want := warmRef(t, ws, p)
		if got != want {
			t.Fatalf("rhs=%d: warm %v, cold %v", rhs, got, want)
		}
	}
}

// TestWarmSolverLowOverlapDeclines checks the seed-on-second-sighting
// policy: a structurally unrelated LP neither warms nor seeds.
func TestWarmSolverLowOverlapDeclines(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warm := NewWarmSolver()
	p := NewProblem(4)
	buildRandomLP(rng, p, 4, 6)
	warm.Feasible(p)
	if _, ok := warm.Feasible(p); !ok {
		t.Fatal("second sighting should seed")
	}
	q := NewProblem(4)
	for i := 0; i < 6; i++ {
		c, r := q.GrowConstraint(LE)
		for j := range c {
			c[j].SetFrac(big.NewInt(int64(100+13*i+j)), big.NewInt(7))
		}
		r.SetInt64(int64(50 + i))
	}
	if _, ok := warm.Feasible(q); ok {
		t.Fatal("unrelated family should be declined, not solved from the stale basis")
	}
}
