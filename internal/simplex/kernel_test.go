package simplex

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/exact"
)

// TestKernelMatchesBigRat is the differential property pinning the int64
// kernel tableau against the pure big.Rat reference: same status, same
// optimal objective, same solution vector, on randomized LPs that include
// free variables, equalities and negative right-hand sides.
func TestKernelMatchesBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	kernel := NewWorkspace()
	ref := NewWorkspace()
	ref.ForceBigRat = true
	for trial := 0; trial < 300; trial++ {
		p := randomProblem(rng)
		if rng.Intn(2) == 0 {
			p.MarkFree(rng.Intn(p.NumVars))
		}
		rk := kernel.Solve(p)
		if got, _ := kernel.LastSolveKernel(); !got {
			t.Fatal("default workspace must solve on the kernel tableau")
		}
		rb := ref.Solve(p)
		if got, _ := ref.LastSolveKernel(); got {
			t.Fatal("ForceBigRat workspace must solve on the reference tableau")
		}
		if rk.Status != rb.Status {
			t.Fatalf("trial %d: kernel status %v, reference status %v", trial, rk.Status, rb.Status)
		}
		if rk.Status != Optimal {
			continue
		}
		if rk.Objective.Cmp(rb.Objective) != 0 {
			t.Fatalf("trial %d: kernel objective %s, reference %s",
				trial, rk.Objective.RatString(), rb.Objective.RatString())
		}
		if !rk.X.Equal(rb.X) {
			t.Fatalf("trial %d: kernel X %v, reference X %v", trial, rk.X, rb.X)
		}
	}
}

// TestKernelWideCoefficients drives the kernel into big.Rat territory: a
// coefficient wider than int64 must route that element through the
// promoted representation and still produce the reference verdict.
func TestKernelWideCoefficients(t *testing.T) {
	huge := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 70), big.NewInt(3))
	build := func() *Problem {
		p := NewProblem(2)
		coeffs := exact.NewVec(2)
		coeffs[0].Set(huge)
		coeffs[1].SetFrac64(7, 1<<50)
		p.AddConstraint(coeffs, LE, big.NewRat(1, 1))
		c2 := exact.NewVec(2)
		c2[0].SetInt64(1)
		c2[1].SetInt64(1)
		p.AddConstraint(c2, GE, big.NewRat(1, 1))
		obj := exact.NewVec(2)
		obj[0].SetInt64(1)
		obj[1].SetInt64(2)
		p.Objective = obj
		return p
	}
	kernel := NewWorkspace()
	ref := NewWorkspace()
	ref.ForceBigRat = true
	p := build()
	rk := kernel.Solve(p)
	rb := ref.Solve(p)
	if rk.Status != rb.Status {
		t.Fatalf("status: kernel %v, reference %v", rk.Status, rb.Status)
	}
	if rk.Status == Optimal {
		if rk.Objective.Cmp(rb.Objective) != 0 {
			t.Fatalf("objective: kernel %s, reference %s", rk.Objective.RatString(), rb.Objective.RatString())
		}
		if !rk.X.Equal(rb.X) {
			t.Fatalf("X: kernel %v, reference %v", rk.X, rb.X)
		}
	}
}

// TestElementPromotionAndDemotion exercises the adaptive integer element
// directly: a rank-one update whose exact result leaves int64 promotes
// (and is counted), and a later result that fits demotes back to the
// machine-word representation.
func TestElementPromotionAndDemotion(t *testing.T) {
	var k ktab
	k.initScratch()
	k.delta.setInt(1)
	var x, p, y, z, dst ient
	x.setInt(math.MaxInt64)
	p.setInt(2)
	y.setInt(0)
	z.setInt(0)
	// dst = (MaxInt64·2 − 0·0)/1: must promote.
	k.pivotUpdate(&dst, &x, &p, &y, &z)
	if k.promotions != 1 {
		t.Fatalf("promotions = %d, want 1", k.promotions)
	}
	if !dst.wide {
		t.Fatal("2·MaxInt64 must be wide")
	}
	want := new(big.Int).SetInt64(math.MaxInt64)
	want.Mul(want, big.NewInt(2))
	if dst.view(k.t1).Cmp(want) != 0 {
		t.Fatalf("wide value %s, want %s", dst.view(k.t1), want)
	}
	// dst = (dst·1 − MaxInt64·1)/1 = MaxInt64: fits again, must demote.
	one := ient{v: 1}
	k.pivotUpdate(&dst, &dst, &one, &x, &one)
	if dst.wide {
		t.Fatal("result fitting int64 must demote")
	}
	if dst.v != math.MaxInt64 {
		t.Fatalf("demoted value %d", dst.v)
	}
	// The scaled update divides exactly: (MaxInt64·6)/3 with Δ = 3.
	k.delta.setInt(3)
	p.setInt(6)
	k.scaleUpdate(&dst, &p)
	want.SetInt64(math.MaxInt64)
	want.Mul(want, big.NewInt(2))
	if dst.view(k.t1).Cmp(want) != 0 {
		t.Fatalf("scaled value %s, want %s", dst.view(k.t1), want)
	}
}

// TestIntFormInvalidation pins the generation-counter contract: rebuilding
// a problem through Reset/GrowConstraint must refresh the kernel snapshot.
func TestIntFormInvalidation(t *testing.T) {
	w := NewWorkspace()
	p := w.Prepare(1)
	row, rhs := p.GrowConstraint(GE)
	row[0].SetInt64(1)
	rhs.SetInt64(5)
	if st := w.SolveStatus(p); st != Optimal {
		t.Fatalf("first solve: %v", st)
	}
	// Rebuild with a contradictory system; a stale snapshot would keep the
	// old feasible row.
	p.Reset(1)
	row, rhs = p.GrowConstraint(GE)
	row[0].SetInt64(-1) // -x ≥ 1 ⇒ x ≤ -1, impossible for x ≥ 0
	rhs.SetInt64(1)
	if st := w.SolveStatus(p); st != Infeasible {
		t.Fatalf("after Reset: %v, want infeasible", st)
	}
	// Direct mutation plus Invalidate.
	p.Constraints[0].RHS.SetInt64(-1) // -x ≥ -1 ⇒ x ≤ 1, feasible
	p.Invalidate()
	if st := w.SolveStatus(p); st != Optimal {
		t.Fatalf("after Invalidate: %v, want optimal", st)
	}
}
