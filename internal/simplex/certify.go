package simplex

// Exact certificate checking for the two-tier feasibility solver.
//
// The float64 revised simplex in internal/floatlp is fast but inexact: its
// verdicts are treated as *claims*, each backed by a certificate that this
// file verifies over ℚ using rational dot products only — no pivoting, no
// elimination. A FEASIBLE claim carries a candidate point, an INFEASIBLE
// claim a Farkas dual ray. Certificates are rounded from float64 onto
// nearby small rationals (exact.SimplestRatWithin) before checking, so
// candidates whose true values are simple rationals survive verification;
// anything that does not check out exactly is rejected, and the caller
// falls back to the exact solver. Verdicts therefore remain bit-exact by
// construction regardless of floating-point behaviour.

import (
	"math"
	"math/big"

	"repro/internal/exact"
)

// pointRoundTol is the relative rounding tolerance applied to candidate
// feasible points: each coordinate is snapped to the simplest rational
// within 2⁻⁴⁰·(1+|xⱼ|). The float filter solves a tightened problem whose
// margin dwarfs this perturbation, so rounding does not push a genuinely
// interior point across a constraint.
var pointRoundTol = math.Ldexp(1, -40)

// farkasRoundTol is the relative rounding tolerance for Farkas multipliers
// (after normalising the ray to unit max-magnitude). It is looser than the
// point tolerance: the ray's exact counterpart often has small rational
// entries (sparse combinations of few rows), and a wider interval lets the
// continued-fraction rounding find them through the float solve's error.
const farkasRoundTol = 1e-9

// farkasSnapTol is the threshold, relative to the largest multiplier, below
// which a ray entry is snapped to zero before rounding.
const farkasSnapTol = 1e-9

// CheckPoint reports whether x is an exact feasibility witness for p: it
// has length p.NumVars, respects the non-negativity of every non-free
// variable, and satisfies every constraint exactly. Rational dot products
// only; p is not mutated.
func CheckPoint(p *Problem, x exact.Vec) bool {
	if len(x) != p.NumVars {
		return false
	}
	for j, v := range x {
		if (p.Free == nil || !p.Free[j]) && v.Sign() < 0 {
			return false
		}
	}
	for i := range p.Constraints {
		con := &p.Constraints[i]
		dot := con.Coeffs.Dot(x)
		switch con.Rel {
		case LE:
			if dot.Cmp(con.RHS) > 0 {
				return false
			}
		case GE:
			if dot.Cmp(con.RHS) < 0 {
				return false
			}
		case EQ:
			if dot.Cmp(con.RHS) != 0 {
				return false
			}
		}
	}
	return true
}

// CheckFarkas reports whether ray (one multiplier qᵢ per constraint) is an
// exact Farkas certificate of p's infeasibility:
//
//	qᵢ ≤ 0 for ≤ rows, qᵢ ≥ 0 for ≥ rows (= rows unrestricted),
//	d := Σᵢ qᵢ·aᵢ has dⱼ ≤ 0 for every non-free variable and dⱼ = 0
//	for every free variable, and Σᵢ qᵢ·bᵢ > 0.
//
// Multiplying each constraint by its qᵢ and summing shows d·x ≥ Σ qᵢbᵢ > 0
// for any x in p's feasible set, while the sign conditions force d·x ≤ 0 —
// a contradiction, so no feasible x exists. Rational dot products only.
func CheckFarkas(p *Problem, ray exact.Vec) bool {
	if len(ray) != len(p.Constraints) || len(ray) == 0 {
		return false
	}
	for i := range p.Constraints {
		s := ray[i].Sign()
		switch p.Constraints[i].Rel {
		case LE:
			if s > 0 {
				return false
			}
		case GE:
			if s < 0 {
				return false
			}
		}
	}
	d := exact.NewVec(p.NumVars)
	rhs := new(big.Rat)
	t := new(big.Rat)
	for i := range p.Constraints {
		if ray[i].Sign() == 0 {
			continue
		}
		con := &p.Constraints[i]
		d.AddScaled(ray[i], con.Coeffs)
		t.Mul(ray[i], con.RHS)
		rhs.Add(rhs, t)
	}
	if rhs.Sign() <= 0 {
		return false
	}
	for j, v := range d {
		if p.Free != nil && p.Free[j] {
			if v.Sign() != 0 {
				return false
			}
		} else if v.Sign() > 0 {
			return false
		}
	}
	return true
}

// CertifyPoint rounds a float64 candidate point onto nearby rationals and
// checks it exactly against p. It returns ok=false (never a wrong verdict)
// when the rounded point fails any constraint — the caller's cue to fall
// back to the exact solver.
func CertifyPoint(p *Problem, x []float64) bool {
	if len(x) != p.NumVars {
		return false
	}
	rx := make(exact.Vec, len(x))
	for j, v := range x {
		if v < 0 && (p.Free == nil || !p.Free[j]) {
			// Float vertices sit on x ≥ 0 bounds up to round-off; a tiny
			// negative is the solver's zero.
			v = 0
		}
		r, err := exact.SimplestRatWithin(v, pointRoundTol*(1+math.Abs(v)))
		if err != nil {
			return false
		}
		rx[j] = r
	}
	return CheckPoint(p, rx)
}

// CertifyFarkas normalises and rounds a float64 Farkas ray, then checks it
// exactly against p. Entries tiny relative to the largest multiplier, or
// carrying the wrong sign for their row, are snapped to zero first (both
// are float noise; zero multipliers are always sign-admissible).
func CertifyFarkas(p *Problem, ray []float64) bool {
	if len(ray) != len(p.Constraints) {
		return false
	}
	scale := 0.0
	for _, q := range ray {
		if a := math.Abs(q); a > scale {
			scale = a
		}
	}
	if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return false
	}
	rq := make(exact.Vec, len(ray))
	for i, q := range ray {
		q /= scale
		if math.Abs(q) < farkasSnapTol {
			q = 0
		}
		switch p.Constraints[i].Rel {
		case LE:
			if q > 0 {
				q = 0
			}
		case GE:
			if q < 0 {
				q = 0
			}
		}
		r, err := exact.SimplestRatWithin(q, farkasRoundTol*(1+math.Abs(q)))
		if err != nil {
			return false
		}
		rq[i] = r
	}
	return CheckFarkas(p, rq)
}
