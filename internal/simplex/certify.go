package simplex

// Exact certificate checking for the two-tier feasibility solver.
//
// The float64 revised simplex in internal/floatlp is fast but inexact: its
// verdicts are treated as *claims*, each backed by a certificate that this
// file verifies over ℚ using dot products only — no pivoting, no
// elimination. A FEASIBLE claim carries a candidate point, an INFEASIBLE
// claim a Farkas dual ray. Certificates are rounded from float64 onto
// nearby small rationals (exact.SimplestRatWithin and its int64 twin)
// before checking, so candidates whose true values are simple rationals
// survive verification; anything that does not check out exactly is
// rejected, and the caller falls back to the exact solver. Verdicts
// therefore remain bit-exact by construction regardless of floating-point
// behaviour.
//
// The hot path runs on the int64 kernel: candidate coordinates round
// through exact.SimplestRat64Within, constraint rows come from the
// Problem's cached Vec64 snapshot (intForm), and every dot product is an
// overflow-checked exact.Rat64 accumulation. On the first overflow — or a
// row whose coefficients do not fit int64 — the certification falls back
// to the big.Rat implementation wholesale, with identical results (both
// paths compute the same exact rationals). A Certifier carries the scratch
// buffers; pool one per worker (the engine's evalScratch does).

import (
	"math"
	"math/big"

	"repro/internal/exact"
)

// pointRoundTol is the relative rounding tolerance applied to candidate
// feasible points: each coordinate is snapped to the simplest rational
// within 2⁻⁴⁰·(1+|xⱼ|). The float filter solves a tightened problem whose
// margin dwarfs this perturbation, so rounding does not push a genuinely
// interior point across a constraint.
var pointRoundTol = math.Ldexp(1, -40)

// farkasRoundTol is the relative rounding tolerance for Farkas multipliers
// (after normalising the ray to unit max-magnitude). It is looser than the
// point tolerance: the ray's exact counterpart often has small rational
// entries (sparse combinations of few rows), and a wider interval lets the
// continued-fraction rounding find them through the float solve's error.
const farkasRoundTol = 1e-9

// farkasSnapTol is the threshold, relative to the largest multiplier, below
// which a ray entry is snapped to zero before rounding.
const farkasSnapTol = 1e-9

// Certifier verifies float-tier certificates over the int64 kernel,
// holding the rounded-candidate and accumulator scratch — including the
// retained big.Rat storage of the per-row fallback — so a pooled instance
// certifies without allocating. Not safe for concurrent use.
type Certifier struct {
	xs []exact.Rat64 // rounded candidate point / ray multipliers
	d  []exact.Rat64 // Farkas combination accumulator

	bigX     exact.Vec // retained big.Rat image of xs (built on demand)
	bsum, bt *big.Rat  // retained dot-product scratch

	// Retained big.Int scratch of the gcd-free row comparison (the
	// second-tier fallback for int64 rows whose dot accumulator overflows).
	sn, sd, bt1, bt2 *big.Int

	// lastKernel reports whether the previous certification ran fully on
	// the int64 kernel (telemetry; see core.SolverStats).
	lastKernel bool
}

// NewCertifier returns an empty certifier.
func NewCertifier() *Certifier { return &Certifier{} }

// LastKernel reports whether the previous Certify call completed without
// falling back to big.Rat arithmetic.
func (c *Certifier) LastKernel() bool { return c.lastKernel }

func (c *Certifier) scratch(n int) []exact.Rat64 {
	if cap(c.xs) < n {
		c.xs = make([]exact.Rat64, n)
	}
	c.xs = c.xs[:n]
	return c.xs
}

func (c *Certifier) accum(n int) []exact.Rat64 {
	if cap(c.d) < n {
		c.d = make([]exact.Rat64, n)
	}
	c.d = c.d[:n]
	zero := exact.Rat64FromInt64(0)
	for i := range c.d {
		c.d[i] = zero
	}
	return c.d
}

// materializeBigX writes xs into the retained big.Rat vector and returns it.
func (c *Certifier) materializeBigX(xs []exact.Rat64) exact.Vec {
	for len(c.bigX) < len(xs) {
		c.bigX = append(c.bigX, new(big.Rat))
	}
	bx := c.bigX[:len(xs)]
	for j := range xs {
		xs[j].RatInto(bx[j])
	}
	return bx
}

// rowCmpBig compares (Σⱼ Numⱼ·xsⱼ)/Den with the row's right-hand side for
// an int64 row whose dot overflowed the Rat64 accumulator. The sum is
// accumulated gcd-free over big.Int (sn/sd with sd = product of the
// multipliers' denominators) in retained scratch, and the comparison
// cross-multiplies — no big.Rat normalisation, no steady-state allocation.
func (c *Certifier) rowCmpBig(ir *intRow, xs []exact.Rat64) int {
	if c.sn == nil {
		c.sn = new(big.Int)
		c.sd = new(big.Int)
		c.bt1 = new(big.Int)
		c.bt2 = new(big.Int)
	}
	c.sn.SetInt64(0)
	c.sd.SetInt64(1)
	for j, num := range ir.coeffs.Num {
		x := xs[j]
		if num == 0 || x.Num() == 0 {
			continue
		}
		// sn/sd += num·x  ⇒  sn = sn·xd + num·xn·sd, sd = sd·xd.
		c.bt1.SetInt64(num)
		c.bt2.SetInt64(x.Num())
		c.bt1.Mul(c.bt1, c.bt2)
		c.bt1.Mul(c.bt1, c.sd)
		c.bt2.SetInt64(x.Den())
		c.sn.Mul(c.sn, c.bt2)
		c.sn.Add(c.sn, c.bt1)
		c.sd.Mul(c.sd, c.bt2)
	}
	// sn/(sd·Den) vs rhsN/rhsD  ⇔  sn·rhsD vs rhsN·sd·Den (denominators
	// positive throughout).
	c.bt1.SetInt64(ir.coeffs.Den)
	c.bt1.Mul(c.bt1, c.sd)
	c.bt2.SetInt64(ir.rhs.Num())
	c.bt1.Mul(c.bt1, c.bt2)
	c.bt2.SetInt64(ir.rhs.Den())
	c.bt2.Mul(c.bt2, c.sn)
	return c.bt2.Cmp(c.bt1)
}

// bigDot computes coeffs·x into the retained scratch and returns it.
func (c *Certifier) bigDot(coeffs, x exact.Vec) *big.Rat {
	if c.bsum == nil {
		c.bsum = new(big.Rat)
		c.bt = new(big.Rat)
	}
	c.bsum.SetInt64(0)
	for i := range coeffs {
		if coeffs[i].Sign() == 0 || x[i].Sign() == 0 {
			continue
		}
		c.bt.Mul(coeffs[i], x[i])
		c.bsum.Add(c.bsum, c.bt)
	}
	return c.bsum
}

// checkPointKernel checks the rounded candidate xs against p: int64 dot
// products on the intForm rows, with a per-row big.Rat fallback (retained
// scratch, identical exact values) for rows too wide for the kernel.
func (c *Certifier) checkPointKernel(p *Problem, xs []exact.Rat64) bool {
	for j := range xs {
		if (p.Free == nil || !p.Free[j]) && xs[j].Sign() < 0 {
			return false
		}
	}
	iform := p.intForm()
	var bx exact.Vec
	for i := range p.Constraints {
		ir := &iform.rows[i]
		var cmp int
		switch {
		case ir.ok:
			if dot, ok := ir.coeffs.DotRat64s(xs); ok {
				cmp = dot.Cmp(ir.rhs)
			} else {
				// int64 row, overflowing accumulator: gcd-free big.Int
				// comparison in retained scratch.
				c.lastKernel = false
				cmp = c.rowCmpBig(ir, xs)
			}
		default:
			if bx == nil {
				bx = c.materializeBigX(xs)
			}
			c.lastKernel = false
			con := &p.Constraints[i]
			cmp = c.bigDot(con.Coeffs, bx).Cmp(con.RHS)
		}
		switch p.Constraints[i].Rel {
		case LE:
			if cmp > 0 {
				return false
			}
		case GE:
			if cmp < 0 {
				return false
			}
		case EQ:
			if cmp != 0 {
				return false
			}
		}
	}
	return true
}

// kernelCheckFarkas checks the rounded multipliers rq against p on the
// int64 kernel; decided=false sends the caller to the big.Rat path.
func (c *Certifier) kernelCheckFarkas(p *Problem, rq []exact.Rat64) (verdict, decided bool) {
	if len(rq) != len(p.Constraints) || len(rq) == 0 {
		return false, true
	}
	for i := range p.Constraints {
		s := rq[i].Sign()
		switch p.Constraints[i].Rel {
		case LE:
			if s > 0 {
				return false, true
			}
		case GE:
			if s < 0 {
				return false, true
			}
		}
	}
	iform := p.intForm()
	d := c.accum(p.NumVars)
	rhs := exact.Rat64FromInt64(0)
	for i := range p.Constraints {
		if rq[i].Sign() == 0 {
			continue
		}
		ir := &iform.rows[i]
		if !ir.ok {
			return false, false
		}
		qd, ok := rq[i].Quo(exact.Rat64FromInt64(ir.coeffs.Den))
		if !ok {
			return false, false
		}
		for j, num := range ir.coeffs.Num {
			if num == 0 {
				continue
			}
			t, ok := qd.MulInt(num)
			if !ok {
				return false, false
			}
			d[j], ok = d[j].Add(t)
			if !ok {
				return false, false
			}
		}
		t, ok := rq[i].Mul(ir.rhs)
		if !ok {
			return false, false
		}
		rhs, ok = rhs.Add(t)
		if !ok {
			return false, false
		}
	}
	if rhs.Sign() <= 0 {
		return false, true
	}
	for j := range d {
		if p.Free != nil && p.Free[j] {
			if d[j].Sign() != 0 {
				return false, true
			}
		} else if d[j].Sign() > 0 {
			return false, true
		}
	}
	return true, true
}

// CheckPoint reports whether x is an exact feasibility witness for p: it
// has length p.NumVars, respects the non-negativity of every non-free
// variable, and satisfies every constraint exactly. Dot products only; p
// is not mutated. Runs on the int64 kernel when x and the constraint rows
// fit, with a bit-identical big.Rat fallback otherwise.
func CheckPoint(p *Problem, x exact.Vec) bool {
	if len(x) != p.NumVars {
		return false
	}
	var c Certifier
	xs := c.scratch(len(x))
	for j, v := range x {
		r, ok := exact.Rat64FromRat(v)
		if !ok {
			return checkPointBig(p, x)
		}
		xs[j] = r
	}
	return c.checkPointKernel(p, xs)
}

// checkPointBig is the big.Rat reference implementation of CheckPoint.
func checkPointBig(p *Problem, x exact.Vec) bool {
	for j, v := range x {
		if (p.Free == nil || !p.Free[j]) && v.Sign() < 0 {
			return false
		}
	}
	for i := range p.Constraints {
		con := &p.Constraints[i]
		dot := con.Coeffs.Dot(x)
		switch con.Rel {
		case LE:
			if dot.Cmp(con.RHS) > 0 {
				return false
			}
		case GE:
			if dot.Cmp(con.RHS) < 0 {
				return false
			}
		case EQ:
			if dot.Cmp(con.RHS) != 0 {
				return false
			}
		}
	}
	return true
}

// CheckFarkas reports whether ray (one multiplier qᵢ per constraint) is an
// exact Farkas certificate of p's infeasibility:
//
//	qᵢ ≤ 0 for ≤ rows, qᵢ ≥ 0 for ≥ rows (= rows unrestricted),
//	d := Σᵢ qᵢ·aᵢ has dⱼ ≤ 0 for every non-free variable and dⱼ = 0
//	for every free variable, and Σᵢ qᵢ·bᵢ > 0.
//
// Multiplying each constraint by its qᵢ and summing shows d·x ≥ Σ qᵢbᵢ > 0
// for any x in p's feasible set, while the sign conditions force d·x ≤ 0 —
// a contradiction, so no feasible x exists. Runs on the int64 kernel when
// everything fits, with a bit-identical big.Rat fallback.
func CheckFarkas(p *Problem, ray exact.Vec) bool {
	if len(ray) != len(p.Constraints) || len(ray) == 0 {
		return false
	}
	var c Certifier
	rq := c.scratch(len(ray))
	fits := true
	for i, v := range ray {
		r, ok := exact.Rat64FromRat(v)
		if !ok {
			fits = false
			break
		}
		rq[i] = r
	}
	if fits {
		if verdict, decided := c.kernelCheckFarkas(p, rq); decided {
			return verdict
		}
	}
	return checkFarkasBig(p, ray)
}

// checkFarkasBig is the big.Rat reference implementation of CheckFarkas.
func checkFarkasBig(p *Problem, ray exact.Vec) bool {
	if len(ray) != len(p.Constraints) || len(ray) == 0 {
		return false
	}
	for i := range p.Constraints {
		s := ray[i].Sign()
		switch p.Constraints[i].Rel {
		case LE:
			if s > 0 {
				return false
			}
		case GE:
			if s < 0 {
				return false
			}
		}
	}
	d := exact.NewVec(p.NumVars)
	rhs := new(big.Rat)
	t := new(big.Rat)
	for i := range p.Constraints {
		if ray[i].Sign() == 0 {
			continue
		}
		con := &p.Constraints[i]
		d.AddScaled(ray[i], con.Coeffs)
		t.Mul(ray[i], con.RHS)
		rhs.Add(rhs, t)
	}
	if rhs.Sign() <= 0 {
		return false
	}
	for j, v := range d {
		if p.Free != nil && p.Free[j] {
			if v.Sign() != 0 {
				return false
			}
		} else if v.Sign() > 0 {
			return false
		}
	}
	return true
}

// CertifyPoint rounds a float64 candidate point onto nearby rationals and
// checks it exactly against p. It returns ok=false (never a wrong verdict)
// when the rounded point fails any constraint — the caller's cue to fall
// back to the exact solver.
func (c *Certifier) CertifyPoint(p *Problem, x []float64) bool {
	c.lastKernel = false
	if len(x) != p.NumVars {
		return false
	}
	xs := c.scratch(len(x))
	fits := true
	for j, v := range x {
		if v < 0 && (p.Free == nil || !p.Free[j]) {
			// Float vertices sit on x ≥ 0 bounds up to round-off; a tiny
			// negative is the solver's zero.
			v = 0
		}
		r, ok := exact.SimplestRat64Within(v, pointRoundTol*(1+math.Abs(v)))
		if !ok {
			fits = false
			break
		}
		xs[j] = r
	}
	if fits {
		c.lastKernel = true // checkPointKernel clears it on a row fallback
		return c.checkPointKernel(p, xs)
	}
	return certifyPointBig(p, x)
}

// certifyPointBig is the big.Rat path: identical rounding (the int64
// rounding is a verified twin of SimplestRatWithin) and reference checks.
func certifyPointBig(p *Problem, x []float64) bool {
	rx := make(exact.Vec, len(x))
	for j, v := range x {
		if v < 0 && (p.Free == nil || !p.Free[j]) {
			v = 0
		}
		r, err := exact.SimplestRatWithin(v, pointRoundTol*(1+math.Abs(v)))
		if err != nil {
			return false
		}
		rx[j] = r
	}
	return checkPointBig(p, rx)
}

// CertifyFarkas normalises and rounds a float64 Farkas ray, then checks it
// exactly against p. Entries tiny relative to the largest multiplier, or
// carrying the wrong sign for their row, are snapped to zero first (both
// are float noise; zero multipliers are always sign-admissible).
func (c *Certifier) CertifyFarkas(p *Problem, ray []float64) bool {
	c.lastKernel = false
	if len(ray) != len(p.Constraints) {
		return false
	}
	scale := 0.0
	for _, q := range ray {
		if a := math.Abs(q); a > scale {
			scale = a
		}
	}
	if scale == 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return false
	}
	rq := c.scratch(len(ray))
	fits := true
	for i, q := range ray {
		q = snapFarkasEntry(p, i, q/scale)
		r, ok := exact.SimplestRat64Within(q, farkasRoundTol*(1+math.Abs(q)))
		if !ok {
			fits = false
			break
		}
		rq[i] = r
	}
	if fits {
		if verdict, decided := c.kernelCheckFarkas(p, rq); decided {
			c.lastKernel = true
			return verdict
		}
		return checkFarkasBig(p, c.materializeBigX(rq))
	}
	return certifyFarkasBig(p, ray, scale)
}

// snapFarkasEntry applies the float-noise snapping shared by both paths.
func snapFarkasEntry(p *Problem, i int, q float64) float64 {
	if math.Abs(q) < farkasSnapTol {
		return 0
	}
	switch p.Constraints[i].Rel {
	case LE:
		if q > 0 {
			return 0
		}
	case GE:
		if q < 0 {
			return 0
		}
	}
	return q
}

// certifyFarkasBig is the big.Rat path of CertifyFarkas.
func certifyFarkasBig(p *Problem, ray []float64, scale float64) bool {
	rq := make(exact.Vec, len(ray))
	for i, q := range ray {
		q = snapFarkasEntry(p, i, q/scale)
		r, err := exact.SimplestRatWithin(q, farkasRoundTol*(1+math.Abs(q)))
		if err != nil {
			return false
		}
		rq[i] = r
	}
	return checkFarkasBig(p, rq)
}

// CertifyPoints certifies a batch of candidate feasible points against p
// in order, sharing the certifier's rounding scratch and p's cached
// kernel snapshot across the whole batch, and returns the index of the
// first candidate that verifies exactly, or −1 when none does. A
// warm-started walk yields several nearby candidates per basis (the
// previous region's witness often still lies inside the next region's
// box); batching the checks runs the snapshot lookup and scratch sizing
// once instead of per candidate and stops at the first success.
func (c *Certifier) CertifyPoints(p *Problem, xs [][]float64) int {
	for i, x := range xs {
		if c.CertifyPoint(p, x) {
			return i
		}
	}
	return -1
}

// CertifyPoint is the pooled-scratch-free convenience form of
// Certifier.CertifyPoint; hot paths hold a Certifier instead.
func CertifyPoint(p *Problem, x []float64) bool {
	var c Certifier
	return c.CertifyPoint(p, x)
}

// CertifyFarkas is the pooled-scratch-free convenience form of
// Certifier.CertifyFarkas; hot paths hold a Certifier instead.
func CertifyFarkas(p *Problem, ray []float64) bool {
	var c Certifier
	return c.CertifyFarkas(p, ray)
}
