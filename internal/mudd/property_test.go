package mudd

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/counters"
)

// randomDiagram builds a random well-formed μDD: a chain of counter, event
// and decision nodes where every decision branch rejoins the chain or ends.
func randomDiagram(rng *rand.Rand, name string, events []counters.Event) *Diagram {
	d := New(name)
	cur := d.StartNode()
	depth := rng.Intn(5) + 1
	for i := 0; i < depth; i++ {
		switch rng.Intn(3) {
		case 0:
			n := d.AddCounter(events[rng.Intn(len(events))])
			d.Link(cur, n)
			cur = n
		case 1:
			n := d.AddEvent(fmt.Sprintf("e%d", i))
			d.Link(cur, n)
			cur = n
		default:
			dec := d.AddDecision(fmt.Sprintf("P%d", i))
			d.Link(cur, dec)
			// Branch A: a counter that rejoins; branch B: early end.
			a := d.AddCounter(events[rng.Intn(len(events))])
			d.LinkValue(dec, a, "A")
			bEnd := d.AddEnd()
			d.LinkValue(dec, bEnd, "B")
			cur = a
		}
	}
	end := d.AddEnd()
	d.Link(cur, end)
	return d
}

// TestRandomDiagramsValidateAndEnumerate: every randomly built diagram is
// valid, enumerates ≥1 μpath, and each path's signature has non-negative
// integer entries bounded by the path length.
func TestRandomDiagramsValidateAndEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	events := []counters.Event{"x", "y", "z"}
	set := counters.NewSet(events...)
	for trial := 0; trial < 100; trial++ {
		d := randomDiagram(rng, fmt.Sprintf("rand%d", trial), events)
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		paths, err := d.Paths()
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("trial %d: no μpaths", trial)
		}
		for _, p := range paths {
			sig := d.Signature(p, set)
			total := int64(0)
			for _, x := range sig {
				if x.Sign() < 0 || !x.IsInt() {
					t.Fatalf("trial %d: bad signature entry %s", trial, x.RatString())
				}
				total += x.Num().Int64()
			}
			if total > int64(len(p.Nodes)) {
				t.Fatalf("trial %d: signature total %d exceeds path length %d",
					trial, total, len(p.Nodes))
			}
		}
	}
}

// TestMergePathUnion: the merged diagram's μpath signature multiset is the
// union of its inputs' (the model-cone additivity Merge relies on).
func TestMergePathUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	events := []counters.Event{"x", "y"}
	set := counters.NewSet(events...)
	for trial := 0; trial < 40; trial++ {
		a := randomDiagram(rng, "A", events)
		b := randomDiagram(rng, "B", events)
		m := Merge("AB", a, b)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		count := func(d *Diagram) map[string]int {
			out := map[string]int{}
			paths, err := d.Paths()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range paths {
				out[d.Signature(p, set).Key()]++
			}
			return out
		}
		ca, cb, cm := count(a), count(b), count(m)
		for k, v := range ca {
			cb[k] += v
		}
		if len(cb) != len(cm) {
			t.Fatalf("trial %d: signature multisets differ: %v vs %v", trial, cb, cm)
		}
		for k, v := range cb {
			if cm[k] != v {
				t.Fatalf("trial %d: multiset differs at %s: %d vs %d", trial, k, v, cm[k])
			}
		}
	}
}
