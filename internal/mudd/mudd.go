// Package mudd implements μpath Decision Diagrams (μDDs), the specialised
// DAGs with which CounterPoint captures an expert's mental model of the
// microarchitecture (paper §3).
//
// A μDD encodes the set of microarchitectural execution paths (μpaths) that
// individual micro-ops may take. Nodes are of five kinds: START, END,
// standard event nodes, counter nodes (which increment a hardware event
// counter when traversed), and decision nodes (which branch on a named
// microarchitectural property such as "Pde$Status"). Causality edges order
// the traversal; happens-before edges add timing constraints between nodes
// without affecting path enumeration.
//
// Each μpath has a counter signature — the vector counting how many times
// each HEC appears along the path. The set of signatures generates the
// model cone (package cone), from which all model constraints follow.
package mudd

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/counters"
	"repro/internal/exact"
)

// NodeID identifies a node within one Diagram.
type NodeID int

// NodeKind classifies μDD nodes.
type NodeKind int

// Node kinds.
const (
	Start NodeKind = iota
	End
	Event    // a standard microarchitectural event (green box)
	Counter  // an HEC increment (blue pill)
	Decision // a branch on a μpath property
)

func (k NodeKind) String() string {
	switch k {
	case Start:
		return "start"
	case End:
		return "end"
	case Event:
		return "event"
	case Counter:
		return "counter"
	case Decision:
		return "decision"
	}
	return "?"
}

// Node is one μDD node. Label is the event name for Event nodes, the HEC
// name for Counter nodes, and the property name for Decision nodes.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Label string
}

// Edge is a causality edge. Value is the property value selected when the
// edge leaves a Decision node (empty otherwise).
type Edge struct {
	From, To NodeID
	Value    string
}

// HBEdge is a happens-before ordering edge between two nodes.
type HBEdge struct {
	Before, After NodeID
}

// Diagram is a μpath Decision Diagram under construction or in use.
type Diagram struct {
	Name  string
	nodes []Node
	out   map[NodeID][]Edge
	hb    []HBEdge
	start NodeID
	built bool
}

// New returns an empty diagram with a START node.
func New(name string) *Diagram {
	d := &Diagram{Name: name, out: make(map[NodeID][]Edge), start: -1}
	d.start = d.addNode(Start, "START")
	return d
}

func (d *Diagram) addNode(kind NodeKind, label string) NodeID {
	id := NodeID(len(d.nodes))
	d.nodes = append(d.nodes, Node{ID: id, Kind: kind, Label: label})
	return id
}

// StartNode returns the diagram's START node.
func (d *Diagram) StartNode() NodeID { return d.start }

// AddEvent adds a standard event node.
func (d *Diagram) AddEvent(name string) NodeID { return d.addNode(Event, name) }

// AddCounter adds a counter node incrementing HEC e.
func (d *Diagram) AddCounter(e counters.Event) NodeID {
	return d.addNode(Counter, string(e))
}

// AddDecision adds a decision node branching on property.
func (d *Diagram) AddDecision(property string) NodeID {
	return d.addNode(Decision, property)
}

// AddEnd adds an END node. A diagram may have several (Figure 4a).
func (d *Diagram) AddEnd() NodeID { return d.addNode(End, "END") }

// Link adds a causality edge from → to.
func (d *Diagram) Link(from, to NodeID) {
	d.out[from] = append(d.out[from], Edge{From: from, To: to})
}

// LinkValue adds a causality edge from a decision node labelled with a
// property value.
func (d *Diagram) LinkValue(from, to NodeID, value string) {
	d.out[from] = append(d.out[from], Edge{From: from, To: to, Value: value})
}

// HappensBefore records a happens-before edge between two nodes.
func (d *Diagram) HappensBefore(before, after NodeID) {
	d.hb = append(d.hb, HBEdge{Before: before, After: after})
}

// Node returns the node with the given id.
func (d *Diagram) Node(id NodeID) Node { return d.nodes[id] }

// Nodes returns all nodes in creation order.
func (d *Diagram) Nodes() []Node {
	out := make([]Node, len(d.nodes))
	copy(out, d.nodes)
	return out
}

// Out returns the outgoing causality edges of id.
func (d *Diagram) Out(id NodeID) []Edge {
	es := d.out[id]
	out := make([]Edge, len(es))
	copy(out, es)
	return out
}

// HBEdges returns the happens-before edges.
func (d *Diagram) HBEdges() []HBEdge {
	out := make([]HBEdge, len(d.hb))
	copy(out, d.hb)
	return out
}

// Properties returns the sorted set of decision properties in the diagram.
func (d *Diagram) Properties() []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range d.nodes {
		if n.Kind == Decision && !seen[n.Label] {
			seen[n.Label] = true
			out = append(out, n.Label)
		}
	}
	sort.Strings(out)
	return out
}

// Counters returns the set of HECs referenced by counter nodes, in first-
// occurrence order.
func (d *Diagram) Counters() *counters.Set {
	var evs []counters.Event
	for _, n := range d.nodes {
		if n.Kind == Counter {
			evs = append(evs, counters.Event(n.Label))
		}
	}
	return counters.NewSet(evs...)
}

// Validate checks structural well-formedness:
//   - all edges reference existing nodes;
//   - causality edges are acyclic;
//   - non-decision nodes have at most one outgoing causality edge and END
//     nodes none;
//   - decision nodes have at least one outgoing edge, every outgoing edge is
//     labelled, and labels are distinct;
//   - every non-START node is reachable from START;
//   - every maximal path terminates at an END node.
func (d *Diagram) Validate() error {
	n := len(d.nodes)
	check := func(id NodeID) error {
		if id < 0 || int(id) >= n {
			return fmt.Errorf("mudd(%s): edge references unknown node %d", d.Name, id)
		}
		return nil
	}
	for from, es := range d.out {
		if err := check(from); err != nil {
			return err
		}
		node := d.nodes[from]
		switch node.Kind {
		case End:
			if len(es) > 0 {
				return fmt.Errorf("mudd(%s): END node %d has outgoing edges", d.Name, from)
			}
		case Decision:
			seen := map[string]bool{}
			for _, e := range es {
				if err := check(e.To); err != nil {
					return err
				}
				if e.Value == "" {
					return fmt.Errorf("mudd(%s): unlabelled edge out of decision %q", d.Name, node.Label)
				}
				if seen[e.Value] {
					return fmt.Errorf("mudd(%s): duplicate value %q out of decision %q", d.Name, e.Value, node.Label)
				}
				seen[e.Value] = true
			}
		default:
			if len(es) > 1 {
				return fmt.Errorf("mudd(%s): node %d (%s %q) has %d outgoing causality edges",
					d.Name, from, node.Kind, node.Label, len(es))
			}
			for _, e := range es {
				if err := check(e.To); err != nil {
					return err
				}
			}
		}
	}
	for _, n := range d.nodes {
		if n.Kind == Decision && len(d.out[n.ID]) == 0 {
			return fmt.Errorf("mudd(%s): decision %q has no outgoing edges", d.Name, n.Label)
		}
	}
	for _, e := range d.hb {
		if err := check(e.Before); err != nil {
			return err
		}
		if err := check(e.After); err != nil {
			return err
		}
	}
	if err := d.checkAcyclic(); err != nil {
		return err
	}
	// Reachability and END termination.
	reach := make([]bool, n)
	var stack []NodeID
	stack = append(stack, d.start)
	reach[d.start] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range d.out[id] {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for _, node := range d.nodes {
		if !reach[node.ID] {
			return fmt.Errorf("mudd(%s): node %d (%s %q) unreachable from START",
				d.Name, node.ID, node.Kind, node.Label)
		}
		if node.Kind != End && len(d.out[node.ID]) == 0 {
			return fmt.Errorf("mudd(%s): node %d (%s %q) is a dead end (no path to END)",
				d.Name, node.ID, node.Kind, node.Label)
		}
	}
	return nil
}

func (d *Diagram) checkAcyclic() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(d.nodes))
	var visit func(id NodeID) error
	visit = func(id NodeID) error {
		color[id] = grey
		for _, e := range d.out[id] {
			switch color[e.To] {
			case grey:
				return fmt.Errorf("mudd(%s): causality cycle through node %d", d.Name, e.To)
			case white:
				if err := visit(e.To); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for _, n := range d.nodes {
		if color[n.ID] == white {
			if err := visit(n.ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// Path is one μpath: a happens-before ordered list of node IDs with the
// property assignment that selected it.
type Path struct {
	Nodes      []NodeID
	Assignment map[string]string
}

// MaxPaths bounds μpath enumeration to guard against combinatorial
// explosion in malformed models.
const MaxPaths = 1 << 20

// Paths enumerates every μpath of the diagram. Traversal follows causality
// edges from START; a decision node whose property is already assigned must
// follow the matching edge (paper §3), otherwise traversal forks once per
// labelled edge. The diagram must be valid.
func (d *Diagram) Paths() ([]Path, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var out []Path
	var walk func(id NodeID, nodes []NodeID, assign map[string]string) error
	walk = func(id NodeID, nodes []NodeID, assign map[string]string) error {
		nodes = append(nodes, id)
		node := d.nodes[id]
		if node.Kind == End {
			if len(out) >= MaxPaths {
				return fmt.Errorf("mudd(%s): more than %d μpaths", d.Name, MaxPaths)
			}
			cp := make([]NodeID, len(nodes))
			copy(cp, nodes)
			ca := make(map[string]string, len(assign))
			for k, v := range assign {
				ca[k] = v
			}
			out = append(out, Path{Nodes: cp, Assignment: ca})
			return nil
		}
		edges := d.out[id]
		if node.Kind != Decision {
			return walk(edges[0].To, nodes, assign)
		}
		if v, ok := assign[node.Label]; ok {
			for _, e := range edges {
				if e.Value == v {
					return walk(e.To, nodes, assign)
				}
			}
			return fmt.Errorf("mudd(%s): decision %q has no edge for assigned value %q",
				d.Name, node.Label, v)
		}
		for _, e := range edges {
			assign[node.Label] = e.Value
			if err := walk(e.To, nodes, assign); err != nil {
				return err
			}
		}
		delete(assign, node.Label)
		return nil
	}
	if err := walk(d.start, nil, map[string]string{}); err != nil {
		return nil, err
	}
	return out, nil
}

// Signature computes the counter signature S(p) of a μpath over set: the
// count of each HEC's counter-node occurrences along the path.
func (d *Diagram) Signature(p Path, set *counters.Set) exact.Vec {
	sig := exact.NewVec(set.Len())
	one := big.NewRat(1, 1)
	for _, id := range p.Nodes {
		n := d.nodes[id]
		if n.Kind != Counter {
			continue
		}
		if i, ok := set.Index(counters.Event(n.Label)); ok {
			sig[i].Add(sig[i], one)
		}
	}
	return sig
}

// Signatures returns the counter signature of every μpath over set.
func (d *Diagram) Signatures(set *counters.Set) ([]exact.Vec, error) {
	paths, err := d.Paths()
	if err != nil {
		return nil, err
	}
	sigs := make([]exact.Vec, len(paths))
	for i, p := range paths {
		sigs[i] = d.Signature(p, set)
	}
	return sigs, nil
}

// PathString renders a μpath like "START → LookupPDE$ → load.pde$_miss → END
// [Pde$Status=Miss]" for reports (compare Figure 4b).
func (d *Diagram) PathString(p Path) string {
	var b strings.Builder
	for i, id := range p.Nodes {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(d.nodes[id].Label)
	}
	if len(p.Assignment) > 0 {
		keys := make([]string, 0, len(p.Assignment))
		for k := range p.Assignment {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" [")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%s", k, p.Assignment[k])
		}
		b.WriteString("]")
	}
	return b.String()
}

// Merge returns a diagram whose μpath set is the union of those of ds: a
// fresh START with one branch per input diagram, selected by a synthetic
// "Diagram" decision property. Model cones are additive over flows, so the
// merged diagram's cone equals the conic hull of the union of the inputs'
// signatures — exactly how a multi-μop-type model (load + store diagrams)
// is composed.
func Merge(name string, ds ...*Diagram) *Diagram {
	m := New(name)
	dec := m.AddDecision("Diagram")
	m.Link(m.start, dec)
	for _, d := range ds {
		remap := make(map[NodeID]NodeID, len(d.nodes))
		for _, n := range d.nodes {
			switch n.Kind {
			case Start:
				// replaced by the branch edge below
			default:
				remap[n.ID] = m.addNode(n.Kind, n.Label)
			}
		}
		// Edge from the decision to whatever START pointed at.
		for _, e := range d.out[d.start] {
			m.LinkValue(dec, remap[e.To], d.Name)
		}
		for from, es := range d.out {
			if from == d.start {
				continue
			}
			for _, e := range es {
				if e.Value != "" {
					m.LinkValue(remap[from], remap[e.To], e.Value)
				} else {
					m.Link(remap[from], remap[e.To])
				}
			}
		}
		for _, h := range d.hb {
			nb, ok1 := remap[h.Before]
			na, ok2 := remap[h.After]
			if ok1 && ok2 {
				m.HappensBefore(nb, na)
			}
		}
	}
	return m
}
