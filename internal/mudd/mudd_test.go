package mudd

import (
	"strings"
	"testing"

	"repro/internal/counters"
)

// figure4a builds the μDD of Figure 4a: STLB lookup; on miss, PDE$ lookup
// increments load.causes_walk; PDE$ miss increments load.pde$_miss and
// walks 2+ levels, PDE$ hit walks 1 level.
func figure4a() *Diagram {
	d := New("fig4a")
	stlb := d.AddDecision("StlbStatus")
	d.Link(d.StartNode(), stlb)
	endHit := d.AddEnd()
	d.LinkValue(stlb, endHit, "Hit")

	lookup := d.AddEvent("LookupPDE$")
	d.LinkValue(stlb, lookup, "Miss")
	cw := d.AddCounter("load.causes_walk")
	d.Link(lookup, cw)
	pde := d.AddDecision("Pde$Status")
	d.Link(cw, pde)

	onelevel := d.AddEvent("1 level walk")
	d.LinkValue(pde, onelevel, "Hit")
	init1 := d.AddEvent("InitializePTW")
	d.Link(onelevel, init1)
	end1 := d.AddEnd()
	d.Link(init1, end1)

	miss := d.AddCounter("load.pde$_miss")
	d.LinkValue(pde, miss, "Miss")
	two := d.AddEvent("2+ level walk")
	d.Link(miss, two)
	init2 := d.AddEvent("InitializePTW")
	d.Link(two, init2)
	end2 := d.AddEnd()
	d.Link(init2, end2)

	d.HappensBefore(lookup, cw)
	return d
}

func TestFigure4aPaths(t *testing.T) {
	d := figure4a()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d μpaths, want 3 (Figure 4b)", len(paths))
	}
	set := d.Counters()
	if set.Len() != 2 {
		t.Fatalf("counters: %v", set.Events())
	}
	// Collect signatures as strings for set comparison.
	got := map[string]bool{}
	for _, p := range paths {
		sig := d.Signature(p, set)
		got[sig.Key()] = true
	}
	for _, want := range []string{"0|0", "1|0", "1|1"} {
		if !got[want] {
			t.Fatalf("missing signature %s; got %v", want, got)
		}
	}
}

func TestPropertyConsistency(t *testing.T) {
	// Two decisions on the same property must take consistent branches:
	// only 2 paths, not 4.
	d := New("consistent")
	d1 := d.AddDecision("P")
	d.Link(d.StartNode(), d1)
	c1 := d.AddCounter("a")
	d.LinkValue(d1, c1, "yes")
	mid := d.AddEvent("mid")
	d.LinkValue(d1, mid, "no")
	d2 := d.AddDecision("P")
	d.Link(c1, d2)
	d.Link(mid, d2)
	cy := d.AddCounter("b")
	d.LinkValue(d2, cy, "yes")
	end1 := d.AddEnd()
	d.Link(cy, end1)
	end2 := d.AddEnd()
	d.LinkValue(d2, end2, "no")

	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	set := d.Counters()
	keys := map[string]bool{}
	for _, p := range paths {
		keys[d.Signature(p, set).Key()] = true
	}
	// yes-branch: a then b; no-branch: neither.
	if !keys["1|1"] || !keys["0|0"] {
		t.Fatalf("signatures: %v", keys)
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	d := New("cycle")
	a := d.AddEvent("a")
	b := d.AddEvent("b")
	d.Link(d.StartNode(), a)
	d.Link(a, b)
	d.Link(b, a)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestValidateCatchesDeadEnd(t *testing.T) {
	d := New("dead")
	a := d.AddEvent("a")
	d.Link(d.StartNode(), a)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "dead end") {
		t.Fatalf("want dead end error, got %v", err)
	}
}

func TestValidateCatchesUnreachable(t *testing.T) {
	d := New("unreach")
	end := d.AddEnd()
	d.Link(d.StartNode(), end)
	orphan := d.AddEvent("orphan")
	end2 := d.AddEnd()
	d.Link(orphan, end2)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
}

func TestValidateCatchesDuplicateValues(t *testing.T) {
	d := New("dup")
	dec := d.AddDecision("P")
	d.Link(d.StartNode(), dec)
	e1 := d.AddEnd()
	e2 := d.AddEnd()
	d.LinkValue(dec, e1, "x")
	d.LinkValue(dec, e2, "x")
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate value") {
		t.Fatalf("want duplicate value error, got %v", err)
	}
}

func TestValidateCatchesUnlabelledDecisionEdge(t *testing.T) {
	d := New("unlabelled")
	dec := d.AddDecision("P")
	d.Link(d.StartNode(), dec)
	e := d.AddEnd()
	d.Link(dec, e) // missing value
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "unlabelled") {
		t.Fatalf("want unlabelled error, got %v", err)
	}
}

func TestValidateCatchesMultipleOut(t *testing.T) {
	d := New("multi")
	a := d.AddEvent("a")
	d.Link(d.StartNode(), a)
	e1 := d.AddEnd()
	e2 := d.AddEnd()
	d.Link(a, e1)
	d.Link(a, e2)
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "outgoing causality") {
		t.Fatalf("want fan-out error, got %v", err)
	}
}

func TestSignatureCountsMultiplicity(t *testing.T) {
	d := New("twice")
	c1 := d.AddCounter("a")
	c2 := d.AddCounter("a")
	end := d.AddEnd()
	d.Link(d.StartNode(), c1)
	d.Link(c1, c2)
	d.Link(c2, end)
	paths, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	set := counters.NewSet("a")
	sig := d.Signature(paths[0], set)
	if sig.Key() != "2" {
		t.Fatalf("got %s, want 2", sig.Key())
	}
}

func TestPathString(t *testing.T) {
	d := figure4a()
	paths, _ := d.Paths()
	var hit string
	for _, p := range paths {
		if p.Assignment["Pde$Status"] == "Miss" {
			hit = d.PathString(p)
		}
	}
	if !strings.Contains(hit, "load.pde$_miss") || !strings.Contains(hit, "Pde$Status=Miss") {
		t.Fatalf("path string: %q", hit)
	}
}

func TestProperties(t *testing.T) {
	d := figure4a()
	props := d.Properties()
	if len(props) != 2 || props[0] != "Pde$Status" || props[1] != "StlbStatus" {
		t.Fatalf("properties: %v", props)
	}
}

func TestMerge(t *testing.T) {
	a := New("A")
	ca := a.AddCounter("x")
	ea := a.AddEnd()
	a.Link(a.StartNode(), ca)
	a.Link(ca, ea)

	b := New("B")
	cb := b.AddCounter("y")
	eb := b.AddEnd()
	b.Link(b.StartNode(), cb)
	b.Link(cb, eb)

	m := Merge("AB", a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	paths, err := m.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	set := counters.NewSet("x", "y")
	keys := map[string]bool{}
	for _, p := range paths {
		keys[m.Signature(p, set).Key()] = true
	}
	if !keys["1|0"] || !keys["0|1"] {
		t.Fatalf("merged signatures wrong: %v", keys)
	}
}

func TestMergePreservesHappensBefore(t *testing.T) {
	a := New("A")
	e1 := a.AddEvent("e1")
	e2 := a.AddEvent("e2")
	end := a.AddEnd()
	a.Link(a.StartNode(), e1)
	a.Link(e1, e2)
	a.Link(e2, end)
	a.HappensBefore(e1, e2)
	m := Merge("M", a)
	if len(m.HBEdges()) != 1 {
		t.Fatalf("hb edges: %d", len(m.HBEdges()))
	}
}

func TestAssignedValueWithNoEdge(t *testing.T) {
	// First decision on P has values {a, b}; a later decision on P only has
	// edge for value a → value b path errors out.
	d := New("noedge")
	d1 := d.AddDecision("P")
	d.Link(d.StartNode(), d1)
	m1 := d.AddEvent("m1")
	d.LinkValue(d1, m1, "a")
	m2 := d.AddEvent("m2")
	d.LinkValue(d1, m2, "b")
	d2 := d.AddDecision("P")
	d.Link(m1, d2)
	d.Link(m2, d2)
	end := d.AddEnd()
	d.LinkValue(d2, end, "a")
	if _, err := d.Paths(); err == nil || !strings.Contains(err.Error(), "no edge for assigned value") {
		t.Fatalf("want assigned-value error, got %v", err)
	}
}
