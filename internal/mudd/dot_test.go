package mudd

import (
	"strings"
	"testing"
)

func TestDOTOutput(t *testing.T) {
	d := figure4a()
	dot := d.DOT()
	for _, want := range []string{
		"digraph \"fig4a\"",
		"shape=diamond",            // decision node
		"fillcolor=\"#bbdefb\"",    // counter node
		"label=\"Miss\"",           // labelled causality edge
		"style=dashed",             // happens-before edge
		"label=\"load.pde$_miss\"", // counter label
		"label=\"load.causes_walk\"",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Deterministic.
	if d.DOT() != dot {
		t.Fatal("DOT output must be deterministic")
	}
}

func TestSummarize(t *testing.T) {
	d := figure4a()
	s := d.Summarize()
	if s.Counters != 2 {
		t.Fatalf("counters: %d", s.Counters)
	}
	if s.Decisions != 2 {
		t.Fatalf("decisions: %d", s.Decisions)
	}
	if s.Ends != 3 {
		t.Fatalf("ends: %d", s.Ends)
	}
	if s.HappensBeforeEdges != 1 {
		t.Fatalf("hb edges: %d", s.HappensBeforeEdges)
	}
	if s.CausalityEdges == 0 || s.Nodes == 0 || s.Properties != 2 {
		t.Fatalf("stats incomplete: %+v", s)
	}
}

func TestEventOrderConsistent(t *testing.T) {
	d := figure4a()
	if err := d.CheckHappensBefore(); err != nil {
		t.Fatal(err)
	}
	paths, _ := d.Paths()
	order, err := d.EventOrder(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(paths[0].Nodes) {
		t.Fatal("order must cover the whole path")
	}
}

func TestEventOrderDetectsContradiction(t *testing.T) {
	d := New("contra")
	a := d.AddEvent("a")
	b := d.AddEvent("b")
	end := d.AddEnd()
	d.Link(d.StartNode(), a)
	d.Link(a, b)
	d.Link(b, end)
	// Assert b happens before a — contradicting causality.
	d.HappensBefore(b, a)
	if err := d.CheckHappensBefore(); err == nil {
		t.Fatal("contradictory happens-before must be detected")
	}
}

func TestEventOrderIgnoresOffPathEdges(t *testing.T) {
	d := New("offpath")
	dec := d.AddDecision("P")
	d.Link(d.StartNode(), dec)
	a := d.AddEvent("a")
	b := d.AddEvent("b")
	endA := d.AddEnd()
	endB := d.AddEnd()
	d.LinkValue(dec, a, "A")
	d.LinkValue(dec, b, "B")
	d.Link(a, endA)
	d.Link(b, endB)
	// a and b never share a μpath, so this edge constrains nothing.
	d.HappensBefore(b, a)
	if err := d.CheckHappensBefore(); err != nil {
		t.Fatal(err)
	}
}
