package mudd

import "fmt"

// EventOrder returns a linearisation of the μpath's nodes that respects
// both the causality order (the path sequence itself) and every
// happens-before edge between nodes on the path (paper §3: "a μop
// generates events in a time order that respects both causality and
// happens-before edges"). An error is reported if the two orders conflict
// — i.e. a happens-before edge points against the causality sequence — or
// if happens-before edges alone form a cycle among the path's nodes.
//
// For well-formed diagrams whose happens-before edges agree with causality
// (the common case, including everything the DSL emits), the result is the
// path itself; the check matters when diagrams are hand-built with extra
// ordering assertions.
func (d *Diagram) EventOrder(p Path) ([]NodeID, error) {
	pos := make(map[NodeID]int, len(p.Nodes))
	for i, id := range p.Nodes {
		if _, dup := pos[id]; dup {
			return nil, fmt.Errorf("mudd(%s): node %d appears twice on μpath", d.Name, id)
		}
		pos[id] = i
	}
	for _, h := range d.hb {
		bi, onPathB := pos[h.Before]
		ai, onPathA := pos[h.After]
		if !onPathB || !onPathA {
			continue // the edge constrains other μpaths
		}
		if bi >= ai {
			return nil, fmt.Errorf(
				"mudd(%s): happens-before edge %s -> %s contradicts causality order on μpath",
				d.Name, d.nodes[h.Before].Label, d.nodes[h.After].Label)
		}
	}
	out := make([]NodeID, len(p.Nodes))
	copy(out, p.Nodes)
	return out, nil
}

// CheckHappensBefore verifies EventOrder for every μpath of the diagram.
func (d *Diagram) CheckHappensBefore() error {
	paths, err := d.Paths()
	if err != nil {
		return err
	}
	for _, p := range paths {
		if _, err := d.EventOrder(p); err != nil {
			return err
		}
	}
	return nil
}
