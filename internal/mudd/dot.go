package mudd

import (
	"fmt"
	"strings"
)

// DOT renders the diagram in Graphviz dot format, mirroring the paper's
// visual language (Figure 4a): green boxes for standard events, blue pills
// for counter nodes, diamonds for decisions, solid arrows for causality
// edges (labelled with property values) and dashed arrows for
// happens-before edges.
func (d *Diagram) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.Name)
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	for _, n := range d.nodes {
		attrs := ""
		switch n.Kind {
		case Start, End:
			attrs = `shape=circle, style=bold`
		case Event:
			attrs = `shape=box, style=filled, fillcolor="#c8e6c9"`
		case Counter:
			attrs = `shape=box, style="rounded,filled", fillcolor="#bbdefb"`
		case Decision:
			attrs = `shape=diamond, style=filled, fillcolor="#fff9c4"`
		}
		fmt.Fprintf(&b, "  n%d [label=%q, %s];\n", n.ID, n.Label, attrs)
	}
	for _, es := range d.outInOrder() {
		for _, e := range es {
			if e.Value != "" {
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.From, e.To, e.Value)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
			}
		}
	}
	for _, h := range d.hb {
		fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, color=gray, constraint=false];\n",
			h.Before, h.After)
	}
	b.WriteString("}\n")
	return b.String()
}

// outInOrder returns outgoing edge lists keyed by ascending node ID so DOT
// output is deterministic.
func (d *Diagram) outInOrder() [][]Edge {
	out := make([][]Edge, len(d.nodes))
	for id, es := range d.out {
		out[id] = es
	}
	return out
}

// Stats summarises a diagram for reports.
type Stats struct {
	Nodes, Events, Counters, Decisions, Ends int
	CausalityEdges, HappensBeforeEdges       int
	Properties                               int
}

// Summarize computes diagram statistics.
func (d *Diagram) Summarize() Stats {
	s := Stats{Nodes: len(d.nodes), HappensBeforeEdges: len(d.hb)}
	for _, n := range d.nodes {
		switch n.Kind {
		case Event:
			s.Events++
		case Counter:
			s.Counters++
		case Decision:
			s.Decisions++
		case End:
			s.Ends++
		}
	}
	for _, es := range d.out {
		s.CausalityEdges += len(es)
	}
	s.Properties = len(d.Properties())
	return s
}
