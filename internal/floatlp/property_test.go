package floatlp

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/exact"
	"repro/internal/simplex"
)

// randomProblem generates a mixed LE/GE/EQ feasibility problem with
// occasional free variables: slab pairs like core.RegionLP's rows plus
// random equality rows like cone membership tests.
func randomProblem(rng *rand.Rand) *simplex.Problem {
	vars := 1 + rng.Intn(8)
	p := simplex.NewProblem(vars)
	for j := 0; j < vars; j++ {
		if rng.Intn(6) == 0 {
			p.MarkFree(j)
		}
	}
	rows := 1 + rng.Intn(6)
	for i := 0; i < rows; i++ {
		coeffs := exact.NewVec(vars)
		for j := range coeffs {
			coeffs[j].SetFrac64(int64(rng.Intn(21)-10), int64(1<<uint(rng.Intn(5))))
		}
		center := int64(rng.Intn(400) - 200)
		switch rng.Intn(4) {
		case 0: // slab pair
			width := int64(1 + rng.Intn(30))
			p.AddConstraint(coeffs, simplex.LE, big.NewRat(center+width, 4))
			p.AddConstraint(coeffs, simplex.GE, big.NewRat(center-width, 4))
		case 1:
			p.AddConstraint(coeffs, simplex.LE, big.NewRat(center, 4))
		case 2:
			p.AddConstraint(coeffs, simplex.GE, big.NewRat(center, 4))
		case 3:
			p.AddConstraint(coeffs, simplex.EQ, big.NewRat(center, 8))
		}
	}
	return p
}

// TestHybridMatchesExactOnRandomLPs is the solver-equivalence property: for
// randomized LPs the certificate-filtered verdict must equal the exact
// solver's verdict whenever the filter makes a claim, and every claim's
// certificate must verify exactly.
func TestHybridMatchesExactOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := NewWorkspace()
	ws := simplex.NewWorkspace()
	trials := 500
	if testing.Short() {
		trials = 120
	}
	var claims, inconclusive, certFail int
	for trial := 0; trial < trials; trial++ {
		p := randomProblem(rng)
		exactFeasible := ws.SolveStatus(p) == simplex.Optimal
		out := w.Feasibility(p)
		switch out.Status {
		case Feasible:
			claims++
			if !exactFeasible {
				t.Fatalf("trial %d: filter claims feasible, exact says infeasible", trial)
			}
			if !simplex.CertifyPoint(p, out.Point) {
				certFail++
			}
		case Infeasible:
			claims++
			if exactFeasible {
				t.Fatalf("trial %d: filter claims infeasible, exact says feasible", trial)
			}
			if !simplex.CertifyFarkas(p, out.Ray) {
				certFail++
			}
		default:
			inconclusive++
		}
	}
	t.Logf("%d trials: %d claims, %d inconclusive, %d certification failures (all safe fallbacks)",
		trials, claims, inconclusive, certFail)
	if claims == 0 {
		t.Fatal("filter never made a claim — the float tier is doing nothing")
	}
}

// TestCorruptedCertificatesRejected flips genuine certificates into invalid
// ones and checks that the exact checkers refuse them.
func TestCorruptedCertificatesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w := NewWorkspace()
	ws := simplex.NewWorkspace()
	var pointsChecked, raysChecked int
	for trial := 0; trial < 400 && (pointsChecked < 25 || raysChecked < 25); trial++ {
		p := randomProblem(rng)
		out := w.Feasibility(p)
		switch out.Status {
		case Feasible:
			if !simplex.CertifyPoint(p, out.Point) {
				continue
			}
			pointsChecked++
			// Corrupt one coordinate grossly; unless the problem is
			// degenerate in that direction, verification must fail — and a
			// pass is only acceptable if the corrupted point is genuinely
			// feasible, which CheckPoint establishes exactly by definition.
			bad := make([]float64, len(out.Point))
			copy(bad, out.Point)
			j := rng.Intn(len(bad))
			bad[j] += 1e6
			if simplex.CertifyPoint(p, bad) {
				// Re-verify the claim with the exact solver: the perturbed
				// point must then really satisfy every constraint.
				rx := make(exact.Vec, len(bad))
				for k, v := range bad {
					rx[k] = new(big.Rat)
					rx[k].SetFloat64(v)
				}
				if !simplex.CheckPoint(p, rx) {
					t.Fatalf("trial %d: corrupted point certified", trial)
				}
			}
		case Infeasible:
			if !simplex.CertifyFarkas(p, out.Ray) {
				continue
			}
			raysChecked++
			// Flipping the ray's sign breaks the sign conditions.
			bad := make([]float64, len(out.Ray))
			for k, v := range out.Ray {
				bad[k] = -v
			}
			if simplex.CertifyFarkas(p, bad) && ws.SolveStatus(p) == simplex.Optimal {
				t.Fatalf("trial %d: corrupted ray certified against feasible problem", trial)
			}
			// Zeroing the ray must always be rejected.
			for k := range bad {
				bad[k] = 0
			}
			if simplex.CertifyFarkas(p, bad) {
				t.Fatalf("trial %d: zero ray certified", trial)
			}
		}
	}
	if pointsChecked == 0 || raysChecked == 0 {
		t.Fatalf("corruption coverage too thin: %d points, %d rays", pointsChecked, raysChecked)
	}
}
