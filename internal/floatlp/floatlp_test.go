package floatlp

import (
	"math/big"
	"testing"

	"repro/internal/exact"
	"repro/internal/simplex"
)

func TestFeasibilityBox(t *testing.T) {
	p := simplex.NewProblem(2)
	p.AddConstraint(exact.VecFromInts(1, 1), simplex.LE, big.NewRat(3, 1))
	p.AddConstraint(exact.VecFromInts(1, 1), simplex.GE, big.NewRat(1, 1))
	w := NewWorkspace()
	out := w.Feasibility(p)
	if out.Status != Feasible {
		t.Fatalf("status %v, want feasible", out.Status)
	}
	if !simplex.CertifyPoint(p, out.Point) {
		t.Fatalf("point certificate %v failed exact verification", out.Point)
	}
}

func TestFeasibilityInfeasible(t *testing.T) {
	p := simplex.NewProblem(1)
	p.AddConstraint(exact.VecFromInts(1), simplex.GE, big.NewRat(2, 1))
	p.AddConstraint(exact.VecFromInts(1), simplex.LE, big.NewRat(1, 1))
	w := NewWorkspace()
	out := w.Feasibility(p)
	if out.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", out.Status)
	}
	if !simplex.CertifyFarkas(p, out.Ray) {
		t.Fatalf("Farkas certificate %v failed exact verification", out.Ray)
	}
}

func TestFeasibilityEmptyProblem(t *testing.T) {
	p := simplex.NewProblem(3)
	w := NewWorkspace()
	out := w.Feasibility(p)
	if out.Status != Feasible {
		t.Fatalf("unconstrained problem: status %v", out.Status)
	}
	if !simplex.CertifyPoint(p, out.Point) {
		t.Fatal("origin certificate rejected")
	}
}

func TestFeasibilityEqualityRows(t *testing.T) {
	// x + y = 4, x − y = 2 with x,y ≥ 0: unique solution (3, 1). The
	// simplest-rational rounding recovers the integer vertex, so even
	// equality-constrained problems can certify through the filter.
	p := simplex.NewProblem(2)
	p.AddConstraint(exact.VecFromInts(1, 1), simplex.EQ, big.NewRat(4, 1))
	p.AddConstraint(exact.VecFromInts(1, -1), simplex.EQ, big.NewRat(2, 1))
	w := NewWorkspace()
	out := w.Feasibility(p)
	if out.Status == Feasible && !simplex.CertifyPoint(p, out.Point) {
		t.Fatalf("feasible claim with uncertifiable point %v", out.Point)
	}
	// x + y = 1 and x + y = 2: infeasible.
	q := simplex.NewProblem(2)
	q.AddConstraint(exact.VecFromInts(1, 1), simplex.EQ, big.NewRat(1, 1))
	q.AddConstraint(exact.VecFromInts(1, 1), simplex.EQ, big.NewRat(2, 1))
	out = w.Feasibility(q)
	if out.Status == Feasible {
		t.Fatal("contradictory equalities claimed feasible")
	}
	if out.Status == Infeasible && !simplex.CertifyFarkas(q, out.Ray) {
		t.Logf("infeasible claim not certified (acceptable: falls back to exact)")
	}
}

func TestFeasibilityFreeVariables(t *testing.T) {
	// x free with x ≤ −5: feasible only because x may go negative.
	p := simplex.NewProblem(1)
	p.MarkFree(0)
	p.AddConstraint(exact.VecFromInts(1), simplex.LE, big.NewRat(-5, 1))
	w := NewWorkspace()
	out := w.Feasibility(p)
	if out.Status != Feasible {
		t.Fatalf("status %v, want feasible (free variable)", out.Status)
	}
	if !simplex.CertifyPoint(p, out.Point) {
		t.Fatalf("free-variable point %v failed certification", out.Point)
	}
	// Same constraint without freedom: infeasible.
	q := simplex.NewProblem(1)
	q.AddConstraint(exact.VecFromInts(1), simplex.LE, big.NewRat(-5, 1))
	out = w.Feasibility(q)
	if out.Status == Feasible {
		t.Fatal("x ≤ −5 with x ≥ 0 claimed feasible")
	}
}

func TestWorkspaceReuseAcrossShapes(t *testing.T) {
	w := NewWorkspace()
	ws := simplex.NewWorkspace()
	shapes := []struct{ vars, rows int }{{2, 2}, {8, 6}, {1, 1}, {5, 10}, {3, 0}}
	for _, s := range shapes {
		p := simplex.NewProblem(s.vars)
		for i := 0; i < s.rows; i++ {
			c := exact.NewVec(s.vars)
			for j := range c {
				c[j].SetInt64(int64((i+j)%3 - 1))
			}
			p.AddConstraint(c, simplex.LE, big.NewRat(int64(i+1), 1))
		}
		out := w.Feasibility(p)
		exactFeasible := ws.SolveStatus(p) == simplex.Optimal
		switch out.Status {
		case Feasible:
			if !exactFeasible {
				t.Fatalf("shape %+v: filter feasible, exact infeasible", s)
			}
		case Infeasible:
			if exactFeasible {
				t.Fatalf("shape %+v: filter infeasible, exact feasible", s)
			}
		}
	}
}
