// Package floatlp is the float64 tier of CounterPoint's two-tier
// feasibility solver: a dense revised simplex over hardware floats that
// solves the same simplex.Problem shape as the exact rational solver and
// emits a *certificate* instead of a bare status — a candidate feasible
// point when it believes the problem feasible, a Farkas dual ray when it
// believes it infeasible.
//
// The filter never decides a verdict on its own. Its certificates are
// verified over ℚ by internal/simplex (CertifyPoint / CertifyFarkas,
// rational dot products only), and anything that fails exact verification
// falls back to the exact two-phase simplex, so verdicts remain bit-exact
// by construction. This is the QSopt_ex / SoPlex float-filtering scheme
// specialised to pure feasibility: hardware floats do the pivoting, exact
// arithmetic only checks.
//
// Two tricks make the certificates verifiable despite round-off:
//
//   - FEASIBLE claims are produced from a *tightened* problem (every
//     inequality pulled in by a per-row margin δᵢ), so the returned vertex
//     is δ-interior to the true feasible set and survives both the float
//     solve's error and the checker's rational rounding.
//   - INFEASIBLE claims re-solve the original (untightened) problem and
//     hand over the phase-1 dual ray; the exact Farkas check either proves
//     infeasibility outright or rejects, never mis-verdicts.
//
// A Workspace is not safe for concurrent use; pool one per worker next to
// the exact simplex.Workspace (internal/engine does exactly that).
package floatlp

import (
	"math"

	"repro/internal/simplex"
)

// Status is the filter's claim about a problem.
type Status int

// Filter outcomes. Inconclusive means the filter could not produce a
// certificate-backed claim (numerical trouble, iteration cap, or a feasible
// set too thin to tighten) and the caller must use the exact solver.
const (
	Inconclusive Status = iota
	Feasible
	Infeasible
)

func (s Status) String() string {
	switch s {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	}
	return "inconclusive"
}

// Outcome is the filter's claim plus its certificate. Point and Ray alias
// workspace storage: they are valid until the next Feasibility call.
type Outcome struct {
	Status Status
	// Point is a candidate feasible point (length NumVars) when Status ==
	// Feasible, produced from the tightened problem so it sits strictly
	// inside the true feasible set.
	Point []float64
	// Ray holds candidate Farkas multipliers (one per constraint, max
	// magnitude 1) when Status == Infeasible.
	Ray []float64
}

// Solver tolerances. The certificate checkers protect correctness, so these
// only trade filter hit rate against wasted exact work.
const (
	// tolDJ is the reduced-cost threshold for entering columns.
	tolDJ = 1e-9
	// tolPiv is the smallest pivot magnitude accepted in the ratio test.
	tolPiv = 1e-8
	// tightenRel scales the per-row interiorness margin δᵢ.
	tightenRel = 1e-9
	// feasRel scales the phase-1 objective threshold separating "feasible"
	// from "infeasible" claims.
	feasRel = 1e-7
	// iterFactor bounds simplex iterations at iterFactor·(m+n).
	iterFactor = 64
)

// Workspace holds the float conversion of a problem and the revised-simplex
// state, all reused across Feasibility calls so the hot loop allocates only
// on growth.
type Workspace struct {
	// Conversion of the current problem (row-equilibrated, original form).
	nVars   int
	mapPos  []int
	mapNeg  []int // -1 when the variable is not free
	nStruct int   // structural columns after free-variable splitting
	m       int
	coef    []float64 // m × nVars row-major, scaled by 1/rowScale
	rowRHS  []float64 // scaled
	rowNrm1 []float64 // ‖aᵢ‖₁ of the scaled row
	rowScl  []float64
	rel     []simplex.Rel
	slack   []int // slack column per row, -1 for EQ
	nReal   int   // structural + slack columns
	maxAbsB float64

	// Standard-form data for one solve (sign-normalised, b ≥ 0).
	cols []float64 // nReal × m column-major
	b    []float64
	sig  []float64 // row sign flips σᵢ

	// Revised-simplex state.
	binv    []float64 // m × m row-major
	xb      []float64
	basis   []int // < nReal real column, ≥ nReal artificial for row basis[k]-nReal
	inBasis []bool
	y       []float64
	d       []float64

	point []float64
	ray   []float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Feasibility runs the float filter on p (objective ignored — this tier
// serves pure feasibility queries) and returns its certificate-backed
// claim. p is not mutated and may be shared with concurrent exact solves.
func (w *Workspace) Feasibility(p *simplex.Problem) Outcome {
	if !w.load(p) {
		return Outcome{Status: Inconclusive}
	}
	if w.m == 0 {
		// No constraints: the origin is feasible.
		w.point = zero(w.point, w.nVars)
		return Outcome{Status: Feasible, Point: w.point}
	}
	if obj, ok := w.phase1(true); ok && obj <= w.feasTol() {
		return Outcome{Status: Feasible, Point: w.extractPoint()}
	}
	obj, ok := w.phase1(false)
	if !ok {
		return Outcome{Status: Inconclusive}
	}
	if obj > w.feasTol() {
		return Outcome{Status: Infeasible, Ray: w.extractRay()}
	}
	// The original problem looks feasible but the tightened one did not:
	// the feasible set is too thin for a rounding-robust point certificate.
	return Outcome{Status: Inconclusive}
}

func (w *Workspace) feasTol() float64 { return feasRel * (1 + w.maxAbsB) }

func zero(s []float64, n int) []float64 {
	s = grow(s, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// int64Exact reports whether x converts to float64 without rounding.
func int64Exact(x int64) bool { return x >= -(1<<53) && x <= 1<<53 }

// loadRow fills row with constraint i's float64 coefficients and returns
// the row's max magnitude and right-hand side. It prefers the problem's
// int64 kernel snapshot — one correctly-rounded IEEE division per entry,
// bit-identical to big.Rat.Float64 on exactly-converting values and free
// of the big.Rat conversion allocations — falling back to big.Rat per row.
// ok=false flags a non-finite coefficient.
func loadRow(p *simplex.Problem, i int, row []float64) (maxAbs, rhs float64, ok bool) {
	con := &p.Constraints[i]
	if kc, krhs, snap := p.SnapshotRow(i); snap && int64Exact(kc.Den) {
		den := float64(kc.Den)
		fast := true
		for j := range row {
			num := kc.Num[j]
			if !int64Exact(num) {
				fast = false
				break
			}
			v := float64(num) / den
			row[j] = v
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if fast {
			// Snapshot values are finite by construction.
			return maxAbs, krhs.Float64(), true
		}
		maxAbs = 0
	}
	for j := range row {
		v, _ := con.Coeffs[j].Float64()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, false
		}
		row[j] = v
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	rhs, _ = con.RHS.Float64()
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return 0, 0, false
	}
	return maxAbs, rhs, true
}

// load converts p into row-equilibrated float64 form. It fails (→
// Inconclusive) on non-finite values, which the exact solver handles by
// its own rules.
func (w *Workspace) load(p *simplex.Problem) bool {
	w.nVars = p.NumVars
	w.m = len(p.Constraints)
	w.mapPos = growInt(w.mapPos, w.nVars)
	w.mapNeg = growInt(w.mapNeg, w.nVars)
	n := 0
	for j := 0; j < w.nVars; j++ {
		w.mapPos[j] = n
		n++
		if p.Free != nil && p.Free[j] {
			w.mapNeg[j] = n
			n++
		} else {
			w.mapNeg[j] = -1
		}
	}
	w.nStruct = n
	w.coef = grow(w.coef, w.m*w.nVars)
	w.rowRHS = grow(w.rowRHS, w.m)
	w.rowNrm1 = grow(w.rowNrm1, w.m)
	w.rowScl = grow(w.rowScl, w.m)
	if cap(w.rel) < w.m {
		w.rel = make([]simplex.Rel, w.m)
	}
	w.rel = w.rel[:w.m]
	w.slack = growInt(w.slack, w.m)
	w.maxAbsB = 0
	nSlack := 0
	for i := range p.Constraints {
		con := &p.Constraints[i]
		row := w.coef[i*w.nVars : (i+1)*w.nVars]
		maxAbs, rhs, ok := loadRow(p, i, row)
		if !ok {
			return false
		}
		// Row equilibration: divide by ‖aᵢ‖∞ so coefficients are O(1) and
		// the solver tolerances are meaningful across problem scales.
		scl := 1.0
		if maxAbs > 0 {
			scl = maxAbs
		}
		nrm1 := 0.0
		for j := range row {
			row[j] /= scl
			nrm1 += math.Abs(row[j])
		}
		w.rowScl[i] = scl
		w.rowRHS[i] = rhs / scl
		w.rowNrm1[i] = nrm1
		w.rel[i] = con.Rel
		if a := math.Abs(w.rowRHS[i]); a > w.maxAbsB {
			w.maxAbsB = a
		}
		if con.Rel == simplex.EQ {
			w.slack[i] = -1
		} else {
			w.slack[i] = w.nStruct + nSlack
			nSlack++
		}
	}
	w.nReal = w.nStruct + nSlack
	return true
}

// prepare builds the sign-normalised standard form (b ≥ 0) for one solve,
// optionally tightening every inequality by its interiorness margin δᵢ.
func (w *Workspace) prepare(tighten bool) {
	m, nReal := w.m, w.nReal
	w.cols = zero(w.cols, nReal*m)
	w.b = grow(w.b, m)
	w.sig = grow(w.sig, m)
	// xScale is a crude bound on solution magnitude for the margin: with
	// equilibrated rows, basic values are O(‖b‖∞).
	xScale := 1 + w.maxAbsB
	for i := 0; i < m; i++ {
		rhs := w.rowRHS[i]
		if tighten {
			delta := tightenRel * (1 + math.Abs(rhs) + w.rowNrm1[i]*xScale)
			switch w.rel[i] {
			case simplex.LE:
				rhs -= delta
			case simplex.GE:
				rhs += delta
			}
		}
		sig := 1.0
		if rhs < 0 {
			sig = -1
			rhs = -rhs
		}
		w.sig[i] = sig
		w.b[i] = rhs
		row := w.coef[i*w.nVars : (i+1)*w.nVars]
		for j := 0; j < w.nVars; j++ {
			v := sig * row[j]
			if v == 0 {
				continue
			}
			w.cols[w.mapPos[j]*m+i] = v
			if w.mapNeg[j] >= 0 {
				w.cols[w.mapNeg[j]*m+i] = -v
			}
		}
		if w.slack[i] >= 0 {
			s := sig
			if w.rel[i] == simplex.GE {
				s = -sig
			}
			w.cols[w.slack[i]*m+i] = s
		}
	}
}

// phase1 runs revised primal simplex on min Σ artificials for the
// (optionally tightened) standard form. It returns the phase-1 objective
// and ok=false on numerical failure (no acceptable pivot, iteration cap).
func (w *Workspace) phase1(tighten bool) (obj float64, ok bool) {
	w.prepare(tighten)
	m, nReal := w.m, w.nReal
	w.binv = zero(w.binv, m*m)
	w.xb = grow(w.xb, m)
	w.basis = growInt(w.basis, m)
	if cap(w.inBasis) < nReal {
		w.inBasis = make([]bool, nReal)
	}
	w.inBasis = w.inBasis[:nReal]
	for j := range w.inBasis {
		w.inBasis[j] = false
	}
	w.y = grow(w.y, m)
	w.d = grow(w.d, m)

	// Crash basis: a row whose slack has coefficient +1 after sign
	// normalisation seeds the basis with its slack; all other rows get an
	// artificial (column id nReal+i).
	nArt := 0
	for i := 0; i < m; i++ {
		w.binv[i*m+i] = 1
		w.xb[i] = w.b[i]
		if w.slack[i] >= 0 && w.cols[w.slack[i]*m+i] > 0 {
			w.basis[i] = w.slack[i]
			w.inBasis[w.slack[i]] = true
		} else {
			w.basis[i] = nReal + i
			nArt++
		}
	}
	if nArt == 0 {
		return 0, true
	}

	maxIter := iterFactor * (m + nReal)
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		// Dual prices y = c_B·B⁻¹ with phase-1 costs (1 on artificials).
		for i := 0; i < m; i++ {
			w.y[i] = 0
		}
		artLeft := false
		for k := 0; k < m; k++ {
			if w.basis[k] < nReal {
				continue
			}
			artLeft = true
			brow := w.binv[k*m : (k+1)*m]
			for i := 0; i < m; i++ {
				w.y[i] += brow[i]
			}
		}
		if !artLeft {
			return 0, true
		}

		// Pricing: reduced cost of real column j is −y·Aⱼ. Dantzig rule,
		// degrading to Bland (first eligible) for anti-cycling.
		enter := -1
		best := -tolDJ
		for j := 0; j < nReal; j++ {
			if w.inBasis[j] {
				continue
			}
			col := w.cols[j*m : (j+1)*m]
			r := 0.0
			for i := 0; i < m; i++ {
				r -= w.y[i] * col[i]
			}
			if r < -tolDJ && (iter > blandAfter || r < best) {
				enter = j
				best = r
				if iter > blandAfter {
					break
				}
			}
		}
		if enter < 0 {
			// Optimal: objective is the artificial mass still basic.
			obj = 0
			for k := 0; k < m; k++ {
				if w.basis[k] >= nReal {
					obj += math.Max(w.xb[k], 0)
				}
			}
			return obj, true
		}

		// Column update d = B⁻¹·A_enter and ratio test.
		col := w.cols[enter*m : (enter+1)*m]
		for i := 0; i < m; i++ {
			brow := w.binv[i*m : (i+1)*m]
			s := 0.0
			for k := 0; k < m; k++ {
				s += brow[k] * col[k]
			}
			w.d[i] = s
		}
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if w.d[i] <= tolPiv {
				continue
			}
			ratio := math.Max(w.xb[i], 0) / w.d[i]
			// Ties prefer expelling artificials, then lower basis index —
			// the Bland-flavoured tie-break that drives phase 1 home.
			if ratio < bestRatio-1e-12 ||
				(ratio <= bestRatio+1e-12 && leave >= 0 && w.basis[i] >= nReal && w.basis[leave] < nReal) {
				leave = i
				bestRatio = ratio
			}
		}
		if leave < 0 {
			// Phase 1 is bounded below by 0; an unbounded column is float
			// breakdown, not information.
			return 0, false
		}

		// Pivot: update B⁻¹, basic values and the basis.
		piv := w.d[leave]
		prow := w.binv[leave*m : (leave+1)*m]
		for k := 0; k < m; k++ {
			prow[k] /= piv
		}
		w.xb[leave] /= piv
		for i := 0; i < m; i++ {
			if i == leave || w.d[i] == 0 {
				continue
			}
			f := w.d[i]
			brow := w.binv[i*m : (i+1)*m]
			for k := 0; k < m; k++ {
				brow[k] -= f * prow[k]
			}
			w.xb[i] -= f * w.xb[leave]
		}
		if w.basis[leave] < nReal {
			w.inBasis[w.basis[leave]] = false
		}
		w.basis[leave] = enter
		w.inBasis[enter] = true
	}
	return 0, false
}

// extractPoint maps the current basic solution back to original variables,
// clamping float-noise negatives on sign-restricted coordinates.
func (w *Workspace) extractPoint() []float64 {
	w.point = zero(w.point, w.nVars)
	for k := 0; k < w.m; k++ {
		if w.basis[k] >= w.nStruct {
			continue
		}
		v := w.xb[k]
		for j := 0; j < w.nVars; j++ {
			switch w.basis[k] {
			case w.mapPos[j]:
				w.point[j] += v
			case w.mapNeg[j]:
				w.point[j] -= v
			}
		}
	}
	for j := range w.point {
		if w.point[j] < 0 && w.mapNeg[j] < 0 {
			w.point[j] = 0
		}
	}
	return w.point
}

// extractRay maps the phase-1 dual prices back to per-constraint Farkas
// multipliers on the original (unscaled, unflipped) rows, normalised to
// unit max-magnitude.
func (w *Workspace) extractRay() []float64 {
	w.ray = grow(w.ray, w.m)
	scale := 0.0
	for i := 0; i < w.m; i++ {
		q := w.sig[i] * w.y[i] / w.rowScl[i]
		w.ray[i] = q
		if a := math.Abs(q); a > scale {
			scale = a
		}
	}
	if scale > 0 {
		for i := range w.ray {
			w.ray[i] /= scale
		}
	}
	return w.ray
}
